"""Palette-WL structure-node ordering — Algorithm 2 of the paper.

A Weisfeiler–Lehman colour refinement that assigns each structure node an
order such that

* the two end structure nodes of the target link always receive orders
  1 and 2,
* structure nodes farther from the target link receive higher orders,
* topologically distinguishable structure nodes receive distinct orders.

The refinement update (Algorithm 2, line 4) hashes a node's neighbourhood
through logarithms of primes indexed by current orders:

    h(N_x) = C(N_x) + Σ_{N_p ∈ Γ(N_x)} log(P(C(N_p)))
                      / | Σ_{N_q ∈ V_S} log(P(C(N_q))) |

Because the correction term lies strictly in ``[0, 1)``, the update is
*order preserving*: nodes with distinct orders keep their relative order,
and only ties (equal orders) can split.  This both guarantees the
end-node anchoring (they start with the two smallest orders) and gives a
convergence proof: the number of distinct orders is non-decreasing and
bounded by ``|V_S|``.

Orders here are *dense ranks* — tied nodes share an order value — exactly
what the refinement needs to be able to split ties.  The public entry
point :func:`palette_wl_order` additionally returns a strict total order
(used to pick the top-K structure nodes) by breaking residual ties with a
deterministic label-based key.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Sequence

import numpy as np

from repro.core.structure import StructureSubgraph
from repro.obs import enabled as obs_enabled, incr, observe, observe_many, span
from repro.utils.primes import nth_prime

_MAX_ITERATIONS = 100


@lru_cache(maxsize=None)
def _log_prime(color: int) -> float:
    return math.log(nth_prime(color))


def palette_wl_order(
    subgraph: StructureSubgraph,
    initial_scores: "Sequence[float] | None" = None,
    edge_length: "Callable[[int, int], float] | None" = None,
    tie_break: "Sequence[float] | None" = None,
) -> list[int]:
    """Assign a strict Palette-WL order to every structure node.

    Args:
        subgraph: the h-hop structure subgraph; indices 0/1 are the end
            structure nodes.
        initial_scores: the initial ordering key of each structure node
            (Algorithm 2, line 1: "increasingly with the distance to
            e_t").  Defaults to :func:`bilateral_distance_scores` — the
            sum of hop distances to the two end nodes, the WLNM
            convention the paper's Algorithm 2 is adopted from, which
            ranks common neighbours (close to *both* ends) before
            one-sided neighbours.  Negative values mean "unreachable" and
            sort after every finite score.
        edge_length: optional structure-link length function used by the
            default initial scores (ignored when ``initial_scores`` is
            given).  The paper's footnote 1 uses the reciprocal
            normalized influence, making strongly/recently connected
            structure nodes rank earlier.
        tie_break: optional per-node score (lower = earlier) used to
            order nodes the WL refinement leaves tied, *before* the
            label-based fallback.  The SSF extractor passes negative
            influence-to-endpoints here so that, among structurally
            equivalent candidates, the most strongly/recently connected
            ones occupy the selected top-K slots — the role footnote 1's
            weighted distances play on dense networks where hop bands
            have massive ties.

    Returns:
        ``order`` such that ``order[i]`` is the 1-based order of structure
        node ``i``; ``order[0] == 1`` and ``order[1] == 2`` always.
    """
    n = subgraph.number_of_structure_nodes()
    if n < 2:
        raise ValueError("structure subgraph must contain both end nodes")
    if initial_scores is None:
        initial_scores = bilateral_distance_scores(subgraph, edge_length)
    if len(initial_scores) != n:
        raise ValueError(f"expected {n} initial scores, got {len(initial_scores)}")

    if tie_break is not None and len(tie_break) != n:
        raise ValueError(f"expected {n} tie-break scores, got {len(tie_break)}")

    with span("palette_wl", nodes=n):
        colors = _initial_colors(initial_scores)
        colors = _refine(subgraph, colors)
        return _strict_order(subgraph, colors, tie_break)


def bilateral_distance_scores(
    subgraph: StructureSubgraph,
    edge_length: "Callable[[int, int], float] | None" = None,
) -> list[float]:
    """``d(N, a) + d(N, b)`` per structure node, the default initial key.

    With unit lengths a common neighbour scores 2 (1 + 1) while a node
    adjacent to one end only scores at least 3 — so the initial colouring
    already separates the structurally central nodes, and top-K selection
    keeps them.  With ``edge_length`` given (footnote 1: reciprocal
    normalized influence), distances additionally prefer strong/recent
    structure links, which is what breaks the massive distance ties of
    dense networks.  Unreachability from one end contributes a
    large-but-finite penalty so half-reachable nodes still order among
    themselves by the reachable side; fully unreachable nodes sort last.
    """
    if edge_length is None:
        from_a = [float(d) for d in subgraph.distances_from(0)]
        from_b = [float(d) for d in subgraph.distances_from(1)]
        unreachable = -1.0
    else:
        from_a = subgraph.weighted_distances_from(0, edge_length)
        from_b = subgraph.weighted_distances_from(1, edge_length)
        unreachable = math.inf
    finite = [
        d for d in from_a + from_b if d != unreachable and math.isfinite(d)
    ]
    penalty = 2.0 * max(finite) + 1.0 if finite else 1.0
    scores: list[float] = []
    for da, db in zip(from_a, from_b):
        sa = da if (da != unreachable and math.isfinite(da)) else penalty
        sb = db if (db != unreachable and math.isfinite(db)) else penalty
        scores.append(sa + sb)
    return scores


def _initial_colors(scores: Sequence[float]) -> list[int]:
    """Dense ranks by score; end nodes pinned to colours 1 and 2.

    All non-end nodes with the same score share a colour (ties are what
    the WL refinement subsequently splits).  Negative scores (unreachable
    markers) rank after every non-negative one.
    """
    sortable = [(s if s >= 0 else math.inf) for s in scores]
    distinct = sorted(set(sortable[2:]))
    rank_of = {s: r + 3 for r, s in enumerate(distinct)}
    return [1, 2] + [rank_of[s] for s in sortable[2:]]


def _refine(subgraph: StructureSubgraph, colors: list[int]) -> list[int]:
    """Iterate the prime-log hash until the colouring stops changing."""
    n = len(colors)
    for iteration in range(_MAX_ITERATIONS):
        log_primes = [_log_prime(c) for c in colors]
        total = sum(log_primes)
        # `total` > 0 always (log 2 > 0 for every node).  Neighbour
        # contributions are summed in sorted-index order so the floating
        # accumulation is canonical (set-iteration order is not).
        hashes = [
            colors[i]
            + sum(log_primes[j] for j in subgraph.adjacency_sorted(i)) / abs(total)
            for i in range(n)
        ]
        new_colors = _dense_rank(hashes)
        # End nodes are guaranteed first by order preservation; pin anyway
        # so numeric noise can never violate the paper's invariant.
        new_colors[0], new_colors[1] = 1, 2
        if new_colors == colors:
            observe("palette_wl.iterations", iteration + 1)
            return colors
        colors = new_colors
    incr("palette_wl.max_iterations_hit")
    observe("palette_wl.iterations", _MAX_ITERATIONS)
    return colors


def _dense_rank(values: Sequence[float]) -> list[int]:
    """1-based dense ranks (equal values share a rank), with a tolerance.

    Floating hashes of symmetric nodes must compare equal; an absolute
    tolerance merges ranks whose hashes differ by less than 1e-9.
    """
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0] * len(values)
    rank = 0
    previous: "float | None" = None
    for idx in order:
        value = values[idx]
        if previous is None or value - previous > 1e-9:
            rank += 1
            previous = value
        ranks[idx] = rank
    return ranks


# ----------------------------------------------------------------------
# batched (many-subgraph) path — used by repro.core.batch
#
# The flat layout: S structure subgraphs are laid out back to back as one
# node range 0..N-1; ``seg_indptr[s]:seg_indptr[s+1]`` are segment ``s``'s
# nodes (local index = flat index − segment start; locals 0/1 are the end
# nodes).  ``nbr_indptr``/``nbr_indices`` are a flat CSR adjacency over
# the *flat* node ids with each row ascending — the batched analogue of
# ``adjacency_sorted`` — so segments are disjoint components and every
# per-subgraph loop of the reference path becomes one flat array pass.
# Every floating-point reduction below replays the reference path's
# left-to-right scalar accumulation order exactly (column-major ragged
# accumulation), keeping batched results bit-identical per segment.
# ----------------------------------------------------------------------


def _gather_rows(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated neighbour rows of ``frontier`` in a flat CSR."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=indices.dtype)
    offsets = np.zeros(len(frontier), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(starts - offsets, counts)
    return indices[flat]


def flat_hop_distances(
    nbr_indptr: np.ndarray, nbr_indices: np.ndarray, sources: np.ndarray
) -> np.ndarray:
    """Multi-source BFS hop distances over a flat CSR (−1 = unreachable).

    Levels are exact integers, so running all segments' BFS as one flat
    sweep (segments are disjoint components) reproduces the per-subgraph
    reference distances bit for bit.
    """
    n = int(nbr_indptr.size) - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[sources] = 0
    frontier = np.asarray(sources, dtype=np.int64)
    depth = 0
    while frontier.size:
        depth += 1
        neighbors = _gather_rows(nbr_indptr, nbr_indices, frontier)
        if neighbors.size == 0:
            break
        fresh = neighbors[dist[neighbors] == -1]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = depth
        frontier = fresh
    return dist


def _segment_ids(seg_indptr: np.ndarray) -> np.ndarray:
    sizes = seg_indptr[1:] - seg_indptr[:-1]
    return np.repeat(np.arange(seg_indptr.size - 1, dtype=np.int64), sizes)


def _column_plan(
    indptr: np.ndarray,
) -> "list[tuple[np.ndarray, np.ndarray]]":
    """Per-position gather plan for sequential ragged accumulation.

    Column ``p`` holds ``(rows, flat_positions)`` — the rows whose length
    exceeds ``p`` and the flat index of their ``p``-th entry.  Accumulating
    column by column replays each row's left-to-right scalar summation
    (starting from 0.0) exactly: a row's entries are added in position
    order, and rows never collide within one column.
    """
    lengths = indptr[1:] - indptr[:-1]
    plan: "list[tuple[np.ndarray, np.ndarray]]" = []
    max_len = int(lengths.max()) if lengths.size else 0
    for position in range(max_len):
        rows = np.flatnonzero(lengths > position)
        plan.append((rows, indptr[rows] + position))
    return plan


def bilateral_distance_scores_many(
    seg_indptr: np.ndarray,
    nbr_indptr: np.ndarray,
    nbr_indices: np.ndarray,
) -> np.ndarray:
    """Batched :func:`bilateral_distance_scores` (unit lengths) per segment."""
    seg_ids = _segment_ids(seg_indptr)
    seg_starts = seg_indptr[:-1]
    from_a = flat_hop_distances(nbr_indptr, nbr_indices, seg_starts)
    from_b = flat_hop_distances(nbr_indptr, nbr_indices, seg_starts + 1)
    # max over the finite distances of both arrays: −1 sentinels sit below
    # the source's 0, so a plain per-segment int max is the finite max.
    max_a = np.maximum.reduceat(from_a, seg_starts)
    max_b = np.maximum.reduceat(from_b, seg_starts)
    penalty = 2.0 * np.maximum(max_a, max_b).astype(np.float64) + 1.0
    score_a = np.where(from_a >= 0, from_a.astype(np.float64), penalty[seg_ids])
    score_b = np.where(from_b >= 0, from_b.astype(np.float64), penalty[seg_ids])
    return score_a + score_b


def _initial_colors_many(
    scores: np.ndarray, seg_indptr: np.ndarray, seg_ids: np.ndarray
) -> np.ndarray:
    """Batched :func:`_initial_colors`: exact-equality dense ranks from 3
    over each segment's non-end nodes; end nodes pinned to 1 and 2."""
    position = np.arange(scores.size, dtype=np.int64) - seg_indptr[seg_ids]
    colors = np.zeros(scores.size, dtype=np.int64)
    colors[position == 0] = 1
    colors[position == 1] = 2
    tail = np.flatnonzero(position >= 2)
    if tail.size == 0:
        return colors
    sortable = np.where(scores[tail] >= 0, scores[tail], np.inf)
    tail_segs = seg_ids[tail]
    order = np.lexsort((sortable, tail_segs))
    sorted_vals = sortable[order]
    sorted_segs = tail_segs[order]
    boundary = np.empty(tail.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (sorted_vals[1:] != sorted_vals[:-1]) | (
        sorted_segs[1:] != sorted_segs[:-1]
    )
    cum = np.cumsum(boundary)
    seg_first = np.zeros(seg_indptr.size - 1, dtype=np.int64)
    starts = np.flatnonzero(
        np.concatenate([[True], sorted_segs[1:] != sorted_segs[:-1]])
    )
    seg_first[sorted_segs[starts]] = cum[starts]
    ranks = cum - seg_first[sorted_segs] + 1
    colors[tail[order]] = ranks + 2
    return colors


def _dense_rank_many(
    values: np.ndarray, seg_indptr: np.ndarray, seg_ids: np.ndarray
) -> np.ndarray:
    """Batched :func:`_dense_rank` with the same 1e-9 tolerance chain.

    A consecutive-diff > 1e-9 in the per-segment sorted values is always a
    rank boundary of the reference scan (the running rank start can only
    be ≤ the previous value).  Blocks between such definite boundaries
    whose total span is ≤ 1e-9 are a single rank; the rare wider block is
    re-scanned with the reference's exact scalar chain (block starts are
    rank starts, so blocks are independent).
    """
    n = values.size
    order = np.lexsort((values, seg_ids))
    sorted_vals = values[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = (sorted_vals[1:] - sorted_vals[:-1]) > 1e-9
    boundary[seg_indptr[:-1]] = True
    block_starts = np.flatnonzero(boundary)
    block_ends = np.append(block_starts[1:], n)
    spans = sorted_vals[block_ends - 1] - sorted_vals[block_starts]
    for block in np.flatnonzero(spans > 1e-9).tolist():
        start, end = int(block_starts[block]), int(block_ends[block])
        previous = sorted_vals[start]
        for i in range(start + 1, end):
            if sorted_vals[i] - previous > 1e-9:
                boundary[i] = True
                previous = sorted_vals[i]
    cum = np.cumsum(boundary)
    rank_sorted = cum - cum[seg_indptr[seg_ids]] + 1
    ranks = np.empty(n, dtype=np.int64)
    ranks[order] = rank_sorted
    return ranks


def _refine_many(
    colors: np.ndarray,
    seg_indptr: np.ndarray,
    seg_ids: np.ndarray,
    nbr_indptr: np.ndarray,
    nbr_indices: np.ndarray,
) -> np.ndarray:
    """Batched :func:`_refine`: all segments iterate together.

    Every pass recomputes every segment (a converged segment is at a fixed
    point of the deterministic update, so recommitting it is a no-op) and
    per-segment convergence is tracked only for the iteration metrics and
    the global stop condition — results equal the per-subgraph reference.
    """
    seg_starts = seg_indptr[:-1]
    sizes = seg_indptr[1:] - seg_indptr[:-1]
    max_color = int(sizes.max())
    table = np.empty(max_color + 1, dtype=np.float64)
    table[0] = 0.0
    for color in range(1, max_color + 1):
        table[color] = _log_prime(color)
    total_plan = _column_plan(seg_indptr)
    neighbor_plan = _column_plan(nbr_indptr)
    gathered_plan = [
        (rows, nbr_indices[positions]) for rows, positions in neighbor_plan
    ]
    n_segments = seg_starts.size
    iterations = np.zeros(n_segments, dtype=np.int64)
    for iteration in range(1, _MAX_ITERATIONS + 1):
        log_primes = table[colors]
        totals = np.zeros(n_segments, dtype=np.float64)
        for rows, positions in total_plan:
            totals[rows] += log_primes[positions]
        neighbor_sums = np.zeros(colors.size, dtype=np.float64)
        for rows, neighbor_ids in gathered_plan:
            neighbor_sums[rows] += log_primes[neighbor_ids]
        hashes = colors.astype(np.float64) + neighbor_sums / np.abs(totals)[seg_ids]
        new_colors = _dense_rank_many(hashes, seg_indptr, seg_ids)
        new_colors[seg_starts] = 1
        new_colors[seg_starts + 1] = 2
        changed = (
            np.add.reduceat((new_colors != colors).astype(np.int64), seg_starts) > 0
        )
        newly_converged = (~changed) & (iterations == 0)
        iterations[newly_converged] = iteration
        colors = new_colors
        if not bool(changed.any()) and bool((iterations > 0).all()):
            break
    capped = iterations == 0
    if obs_enabled():
        observe_many(
            "palette_wl.iterations",
            [count if count else _MAX_ITERATIONS for count in iterations.tolist()],
        )
        if bool(capped.any()):
            incr("palette_wl.max_iterations_hit", int(capped.sum()))
    return colors


def _strict_order_many(
    colors: np.ndarray,
    tie_break: np.ndarray,
    seg_indptr: np.ndarray,
    seg_ids: np.ndarray,
    sort_key: "Callable[[int], tuple[str, ...]]",
    singleton_ranks: "Callable[[], np.ndarray] | None" = None,
) -> np.ndarray:
    """Batched :func:`_strict_order`; ``sort_key`` takes a flat node id.

    ``singleton_ranks``, when given, lazily supplies an int64 array
    mapping each flat node to a precomputed label-repr rank, or ``-1``
    where no scalar rank exists (multi-member groups).  Ranks only ever
    compare *within* one tied run — the (segment, color, tie) columns
    already separate runs — so runs whose nodes all carry a scalar rank
    skip the Python ``sort_key`` path entirely.
    """
    n = colors.size
    order = np.lexsort((tie_break, colors, seg_ids))
    same = np.zeros(n, dtype=bool)
    same[1:] = (
        (seg_ids[1:] == seg_ids[:-1])
        & (colors[order[1:]] == colors[order[:-1]])
        & (tie_break[order[1:]] == tie_break[order[:-1]])
    )
    run_starts = np.flatnonzero(~same)
    run_ends = np.append(run_starts[1:], n)
    ambiguous = np.flatnonzero(run_ends - run_starts > 1)
    if ambiguous.size:
        # Residual ties resolve by label key.  Interning every tied
        # node's key as its rank among the distinct keys (ranks ordered
        # exactly as the tuples compare) lets ONE stable lexsort with the
        # rank column replace a Python re-sort per tied run; equal keys
        # keep first-lexsort order, matching sorted()'s stability.
        lengths = run_ends[ambiguous] - run_starts[ambiguous]
        offsets = np.arange(int(lengths.sum()), dtype=np.int64) - np.repeat(
            np.concatenate([[0], np.cumsum(lengths)[:-1]]), lengths
        )
        tied_nodes = order[np.repeat(run_starts[ambiguous], lengths) + offsets]
        ranks = np.zeros(n, dtype=np.int64)
        slow = tied_nodes
        vec = singleton_ranks() if singleton_ranks is not None else None
        if vec is not None:
            tied_ranks = vec[tied_nodes]
            run_of = np.repeat(
                np.arange(ambiguous.size, dtype=np.int64), lengths
            )
            run_ok = np.ones(ambiguous.size, dtype=bool)
            run_ok[run_of[tied_ranks < 0]] = False
            ok = run_ok[run_of]
            ranks[tied_nodes[ok]] = tied_ranks[ok]
            slow = tied_nodes[~ok]
        if slow.size:
            keys = [sort_key(int(node)) for node in slow.tolist()]
            rank_of = {
                key: rank for rank, key in enumerate(sorted(set(keys)))
            }
            ranks[slow] = np.fromiter(
                (rank_of[key] for key in keys),
                dtype=np.int64,
                count=len(keys),
            )
        order = np.lexsort((ranks, tie_break, colors, seg_ids))
    out = np.empty(n, dtype=np.int64)
    out[order] = np.arange(n, dtype=np.int64) - seg_indptr[seg_ids] + 1
    return out


def palette_wl_order_many(
    seg_indptr: np.ndarray,
    nbr_indptr: np.ndarray,
    nbr_indices: np.ndarray,
    tie_break: "np.ndarray | None",
    sort_key: "Callable[[int], tuple[str, ...]]",
    singleton_ranks: "Callable[[], np.ndarray] | None" = None,
) -> np.ndarray:
    """Strict Palette-WL orders for many structure subgraphs at once.

    Batched form of :func:`palette_wl_order` with the default bilateral
    initial scores and unit edge lengths (what the SSF extractor uses):
    ``S`` subgraphs laid out flat (see the section comment above) are
    coloured, refined and strict-ordered in shared array passes, returning
    the per-node 1-based order within its segment.  Bit-identical to
    calling :func:`palette_wl_order` per subgraph — enforced by the
    batched differential tests.

    Args:
        seg_indptr: int64 ``(S + 1,)`` flat node offsets per subgraph.
        nbr_indptr: int64 ``(N + 1,)`` flat adjacency offsets.
        nbr_indices: int64 flat neighbour ids, ascending within each row.
        tie_break: optional float64 ``(N,)`` WL-tie scores (lower =
            earlier), as in :func:`palette_wl_order`.
        sort_key: label key of a flat node id, breaking residual ties.
        singleton_ranks: optional lazy per-flat-node scalar key ranks
            (``-1`` = no scalar rank); see :func:`_strict_order_many`.
    """
    n = int(seg_indptr[-1])
    sizes = seg_indptr[1:] - seg_indptr[:-1]
    if sizes.size and int(sizes.min()) < 2:
        raise ValueError("structure subgraph must contain both end nodes")
    if tie_break is not None and tie_break.size != n:
        raise ValueError(f"expected {n} tie-break scores, got {tie_break.size}")
    seg_ids = _segment_ids(seg_indptr)
    with span("palette_wl", nodes=n, segments=int(sizes.size)):
        scores = bilateral_distance_scores_many(
            seg_indptr, nbr_indptr, nbr_indices
        )
        colors = _initial_colors_many(scores, seg_indptr, seg_ids)
        colors = _refine_many(
            colors, seg_indptr, seg_ids, nbr_indptr, nbr_indices
        )
        ties = (
            tie_break
            if tie_break is not None
            else np.zeros(n, dtype=np.float64)
        )
        return _strict_order_many(
            colors, ties, seg_indptr, seg_ids, sort_key, singleton_ranks
        )


def _strict_order(
    subgraph: StructureSubgraph,
    colors: Sequence[int],
    tie_break: "Sequence[float] | None" = None,
) -> list[int]:
    """Break residual colour ties deterministically into a total order.

    Nodes that the refinement could not distinguish are *structurally*
    symmetric around the target link; the optional ``tie_break`` score
    orders them by link strength, and a label-based key guarantees
    determinism beyond that.  The label key is only computed for nodes
    that are still tied after ``(colour, tie_break)`` — on most subgraphs
    that is nobody, so the member-label materialisation is skipped.
    """
    if tie_break is None:
        tie_break = [0.0] * len(colors)
    indices = sorted(
        range(len(colors)), key=lambda i: (colors[i], tie_break[i])
    )
    # Stable-resort runs of equal (colour, tie_break) by the label key.
    start = 0
    while start < len(indices):
        end = start + 1
        head = indices[start]
        while (
            end < len(indices)
            and colors[indices[end]] == colors[head]
            and tie_break[indices[end]] == tie_break[head]
        ):
            end += 1
        if end - start > 1:
            indices[start:end] = sorted(
                indices[start:end], key=subgraph.sort_key
            )
        start = end
    order = [0] * len(colors)
    for position, idx in enumerate(indices, start=1):
        order[idx] = position
    return order

"""Link recommendation — the paper's motivating application.

The introduction motivates link prediction with "personalized
recommendation in social or e-commerce networks"; this module is that
product surface: given a trained SSF model and a user (node), rank the
candidate partners most likely to link next.

Candidate generation follows standard recommender practice: the friends-
of-friends ball around the user (2 hops by default, where almost all new
links form) minus existing partners, optionally topped up with globally
active nodes so cold-ish users still get suggestions.

Example::

    recommender = LinkRecommender.fit(network)
    for suggestion in recommender.recommend("alice", top_n=5):
        print(suggestion.node, suggestion.score)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.temporal import DynamicNetwork, median_timestamp_gap
from repro.models.linear import LinearRegressionModel
from repro.models.neural import NeuralMachine
from repro.obs import get_logger, span
from repro.sampling.splits import build_link_prediction_task
from repro.utils.rng import ensure_rng

Node = Hashable

_LOG = get_logger("recommend")


@dataclass(frozen=True)
class Suggestion:
    """One recommended partner."""

    node: Node
    score: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.node!r} ({self.score:.3f})"


class LinkRecommender:
    """Top-N partner recommendation backed by an SSF model.

    Build with :meth:`fit` (self-supervised: trains on the network's own
    last timestamp, exactly the paper's task) or assemble from an
    existing extractor + trained model for custom pipelines.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        extractor: SSFExtractor,
        model: "LinearRegressionModel | NeuralMachine",
        *,
        candidate_hops: int = 2,
        global_candidates: int = 20,
        seed: int = 0,
    ) -> None:
        if candidate_hops < 1:
            raise ValueError(f"candidate_hops must be >= 1, got {candidate_hops}")
        if global_candidates < 0:
            raise ValueError("global_candidates must be >= 0")
        self.network = network
        self.extractor = extractor
        self.model = model
        self.candidate_hops = candidate_hops
        self.global_candidates = global_candidates
        self._rng = ensure_rng(seed)
        self._active_nodes = self._most_active(global_candidates)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def fit(
        cls,
        network: DynamicNetwork,
        *,
        config: "SSFConfig | None" = None,
        model: str = "linear",
        epochs: int = 60,
        max_positives: "int | None" = 300,
        seed: int = 0,
    ) -> "LinkRecommender":
        """Self-supervised training on the network's own final timestamp.

        Args:
            network: the full interaction history.
            config: SSF hyper-parameters.
            model: ``"linear"`` or ``"neural"``.
            epochs: neural-machine epochs (ignored for linear).
            max_positives: training-sample cap (None = all).
            seed: RNG seed.
        """
        if model not in ("linear", "neural"):
            raise ValueError(f"model must be 'linear' or 'neural', got {model!r}")
        config = config or SSFConfig()
        task = build_link_prediction_task(
            network, max_positives=max_positives, seed=seed
        )
        extractor = SSFExtractor(
            task.history, config, present_time=task.present_time
        )
        pairs = list(task.train_pairs) + list(task.test_pairs)
        labels = np.concatenate([task.train_labels, task.test_labels])
        _LOG.info(
            "fitting %s recommender on %d labelled pairs", model, len(pairs)
        )
        with span("recommend.fit", pairs=len(pairs)):
            features = extractor.extract_batch(pairs)
        if model == "linear":
            fitted = LinearRegressionModel().fit(features, labels)
        else:
            fitted = NeuralMachine(
                input_dim=features.shape[1], epochs=epochs, seed=seed
            ).fit(features, labels)

        # Serve recommendations from the FULL network (including the last
        # timestamp): at serving time everything observed is history.  The
        # serving clock sits one observed median inter-stamp gap past the
        # newest link — the same step the streaming scorer uses — because
        # a hard-coded +1.0 treats history as ~one step fresher than it
        # is under exp(-θ·Δt) whenever stamps are not unit-spaced.
        serving_extractor = SSFExtractor(
            network,
            config,
            present_time=network.last_timestamp()
            + median_timestamp_gap(network.timestamp_set()),
        )
        return cls(network, serving_extractor, fitted, seed=seed)

    # ------------------------------------------------------------------
    # recommendation
    # ------------------------------------------------------------------
    def candidates(self, user: Node) -> list[Node]:
        """Candidate partners: the friends-of-friends ball plus hubs."""
        if not self.network.has_node(user):
            raise KeyError(f"user {user!r} not in network")
        partners = self.network.neighbors(user)
        ball: set[Node] = set()
        frontier = {user}
        seen = {user}
        for _ in range(self.candidate_hops):
            nxt: set[Node] = set()
            for node in frontier:
                for nb in self.network.neighbor_view(node):
                    if nb not in seen:
                        seen.add(nb)
                        nxt.add(nb)
            ball |= nxt
            frontier = nxt
        out = (ball | set(self._active_nodes)) - partners - {user}
        return sorted(out, key=repr)

    def recommend(self, user: Node, top_n: int = 10) -> list[Suggestion]:
        """The ``top_n`` highest-scored new partners for ``user``."""
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        pool = self.candidates(user)
        if not pool:
            _LOG.debug("no candidate partners for user %r", user)
            return []
        _LOG.debug("scoring %d candidate partners for user %r", len(pool), user)
        with span("recommend.score", candidates=len(pool)):
            features = self.extractor.extract_batch([(user, c) for c in pool])
        scores = self.model.decision_scores(features)
        order = np.argsort(-scores, kind="mergesort")[:top_n]
        return [Suggestion(node=pool[int(i)], score=float(scores[int(i)])) for i in order]

    def _most_active(self, count: int) -> list[Node]:
        if count == 0:
            return []
        nodes = self.network.nodes
        by_activity = sorted(
            nodes, key=lambda n: self.network.degree(n), reverse=True
        )
        return by_activity[:count]


def hit_rate_at_n(
    network: DynamicNetwork,
    *,
    top_n: int = 10,
    n_users: int = 30,
    model: str = "linear",
    seed: int = 0,
) -> float:
    """Offline recommendation quality: train on history, ask for top-N
    suggestions for users who actually formed a new link at the last
    timestamp, and report the fraction whose true new partner appears.

    A product-level metric complementing AUC: it measures the ranking
    head, which is what a recommendation surface exposes.
    """
    rng = ensure_rng(seed)
    present = network.last_timestamp()
    history = network.slice(network.first_timestamp(), present)
    # users with a NEW partner at the last timestamp
    truth: dict[Node, set[Node]] = {}
    for u, v, ts in network.edges():
        if ts == present and history.has_node(u) and history.has_node(v):
            if not history.has_edge(u, v):
                truth.setdefault(u, set()).add(v)
                truth.setdefault(v, set()).add(u)
    users = sorted(truth, key=repr)
    if not users:
        raise ValueError("no user formed a new link at the last timestamp")
    if len(users) > n_users:
        idx = rng.choice(len(users), size=n_users, replace=False)
        users = [users[int(i)] for i in idx]

    recommender = LinkRecommender.fit(history, model=model, seed=seed)
    hits = 0
    for user in users:
        suggestions = {s.node for s in recommender.recommend(user, top_n=top_n)}
        if suggestions & truth[user]:
            hits += 1
    return hits / len(users)

"""Terminal visualisation: ASCII line charts and bars (no matplotlib)."""

from repro.viz.ascii_plot import bar_chart, line_chart, sparkline

__all__ = ["line_chart", "bar_chart", "sparkline"]

"""ASCII charts for terminals (the offline stand-in for Fig. 7 plots).

Three primitives:

* :func:`line_chart` — multi-series line chart on a character grid with
  y-axis labels and a legend (one marker character per series),
* :func:`bar_chart` — labelled horizontal bars,
* :func:`sparkline` — a one-line eight-level profile (▁▂▃▄▅▆▇█).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"
_MARKERS = "ox+*#@%&"


def sparkline(values: Sequence[float]) -> str:
    """Compress a series into one line of block characters."""
    vals = [float(v) for v in values]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)
    if math.isclose(lo, hi):
        return _SPARK_LEVELS[0] * len(vals)
    span = hi - lo
    out = []
    for v in vals:
        level = int((v - lo) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def bar_chart(
    items: Mapping[str, float],
    *,
    width: int = 40,
    fill: str = "#",
) -> str:
    """Horizontal bars scaled to the maximum value.

    Example::

        CN     | ############                0.72
        SSFNM  | ####################        0.89
    """
    if not items:
        return ""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    label_width = max(len(k) for k in items)
    peak = max(abs(v) for v in items.values()) or 1.0
    lines = []
    for key, value in items.items():
        bar = fill * max(0, int(round(abs(value) / peak * width)))
        lines.append(f"{key:<{label_width}s} | {bar:<{width}s} {value:8.3f}")
    return "\n".join(lines)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 60,
    height: int = 15,
    y_label: str = "",
) -> str:
    """Plot one or more ``(x, y)`` series on a character grid.

    Each series gets a distinct marker; a legend line maps markers to
    series names.  Axis ranges cover all points of all series.
    """
    if not series:
        return ""
    if width < 10 or height < 4:
        raise ValueError("width must be >= 10 and height >= 4")
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return ""
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = height - 1 - int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[row][col] = marker

    label_hi = f"{y_hi:.3f}"
    label_lo = f"{y_lo:.3f}"
    margin = max(len(label_hi), len(label_lo), len(y_label)) + 1
    lines = []
    if y_label:
        lines.append(f"{y_label:>{margin}s}")
    for index, row in enumerate(grid):
        if index == 0:
            prefix = f"{label_hi:>{margin}s}"
        elif index == height - 1:
            prefix = f"{label_lo:>{margin}s}"
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    lines.append(
        " " * margin
        + f" {x_lo:<{width // 2 - 1}.6g}{x_hi:>{width // 2}.6g}"
    )
    legend = "   ".join(
        f"{marker}={name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(" " * margin + " " + legend)
    return "\n".join(lines)

"""Loading real dataset files through the same pipeline.

When the paper's actual network dumps are available (KONECT ``out.*``
files or plain ``u v timestamp`` TSVs), :func:`load_dataset_file` reads
them into a :class:`~repro.graph.temporal.DynamicNetwork` with the paper's
timestamp normalisation: raw (usually UNIX-epoch) timestamps are rescaled
onto the integers ``1..span`` (Sec. VI-A: "the number of different
timestamps of these networks are normalized according to the time span").
"""

from __future__ import annotations

import math
import os

from repro.graph.io import read_edge_list
from repro.graph.temporal import DynamicNetwork


def normalize_timestamps(network: DynamicNetwork, span: int) -> DynamicNetwork:
    """Rescale raw timestamps onto the integer grid ``1..span``.

    The earliest link maps to 1 and the latest to ``span``; intermediate
    stamps are binned proportionally, reproducing the paper's "803 hours →
    timestamps in [1, 803]" convention.
    """
    if span < 1:
        raise ValueError(f"span must be >= 1, got {span}")
    if network.number_of_links() == 0:
        return network.copy()
    first = network.first_timestamp()
    last = network.last_timestamp()
    width = last - first
    out = DynamicNetwork()
    for u, v, ts in network.edges():
        if width == 0:
            stamp = span
        else:
            stamp = 1 + math.floor((ts - first) / width * (span - 1) + 0.5)
        out.add_edge(u, v, float(min(max(stamp, 1), span)))
    return out


def load_dataset_file(
    path: "str | os.PathLike[str]",
    span: "int | None" = None,
) -> DynamicNetwork:
    """Load a timestamped edge list, optionally normalising timestamps.

    Args:
        path: TSV (``u v ts``) or KONECT (``u v w ts``) file.
        span: when given, rescale timestamps onto ``1..span`` (use the
            Table II time-span values to match the paper's protocol).
    """
    network = read_edge_list(path)
    if span is not None:
        network = normalize_timestamps(network, span)
    return network

"""The seven named datasets of Table II, as calibrated synthetic configs.

Each :class:`DatasetSpec` pins the paper's node/link/time-span statistics
and an event-model parameterisation reproducing the network family:

=========  ======  =======  ====  ==========================================
dataset    |V|     |E|      span  family
=========  ======  =======  ====  ==========================================
eu-email   309     61046    803   very dense institution email, heavy repeats
contact    274     28245    96    dense proximity contacts, bursty repeats
facebook   4313    42346    366   wall posts, celebrity hubs, sparse
co-author  744     7034     20    research groups, triadic closure, yearly
prosper    1264    8874     60    loans, moderate hubs, low closure
slashdot   2680    9904     240   reply network, strong hubs, very sparse
digg       3215    9618     240   reply network, strong hubs, sparsest
=========  ======  =======  ====  ==========================================

``DatasetSpec.generate(seed, scale)`` produces the network; ``scale < 1``
shrinks nodes and links proportionally (tests use ``scale≈0.1``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datasets.synthetic import EventModelConfig, generate_event_network
from repro.graph.temporal import DynamicNetwork, average_degree


@dataclass(frozen=True)
class DatasetSpec:
    """A named dynamic-network dataset configuration."""

    name: str
    n_nodes: int
    n_links: int
    span: int
    description: str
    repeat_prob: float
    closure_prob: float
    pa_prob: float
    activity_exponent: float
    community_count: int = 0
    community_bias: float = 0.8
    final_fraction: float = 0.03
    recency_bias: float = 0.7
    recency_window: int = 5
    group_event_prob: float = 0.0
    group_size: int = 4
    bipartite_fraction: float = 0.0

    def config(self, scale: float = 1.0) -> EventModelConfig:
        """The event-model config, optionally scaled down."""
        if not 0.0 < scale <= 1.0:
            raise ValueError(f"scale must be in (0, 1], got {scale}")
        n_nodes = max(10, int(round(self.n_nodes * scale)))
        n_links = max(50, int(round(self.n_links * scale)))
        community_count = self.community_count
        if community_count:
            community_count = max(2, int(round(community_count * scale)))
        return EventModelConfig(
            n_nodes=n_nodes,
            n_links=n_links,
            span=self.span,
            repeat_prob=self.repeat_prob,
            closure_prob=self.closure_prob,
            pa_prob=self.pa_prob,
            activity_exponent=self.activity_exponent,
            community_count=community_count,
            community_bias=self.community_bias,
            final_fraction=self.final_fraction,
            recency_bias=self.recency_bias,
            recency_window=self.recency_window,
            group_event_prob=self.group_event_prob,
            group_size=self.group_size,
            bipartite_fraction=self.bipartite_fraction,
        )

    def generate(
        self, seed: int = 0, scale: float = 1.0
    ) -> DynamicNetwork:
        """Generate the synthetic stand-in network."""
        return generate_event_network(self.config(scale), seed=seed)

    @property
    def paper_average_degree(self) -> float:
        """The Table II average (multigraph) degree."""
        return 2.0 * self.n_links / self.n_nodes


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec(
            name="eu-email",
            n_nodes=309,
            n_links=61046,
            span=803,
            description="European research-institution email (dense, repeated)",
            repeat_prob=0.80,
            closure_prob=0.10,
            pa_prob=0.06,
            activity_exponent=0.9,
            group_event_prob=0.30,
            group_size=4,
        ),
        DatasetSpec(
            name="contact",
            n_nodes=274,
            n_links=28245,
            span=96,
            description="Wireless-device proximity contacts (dense, bursty)",
            repeat_prob=0.75,
            closure_prob=0.12,
            pa_prob=0.08,
            activity_exponent=0.7,
            group_event_prob=0.45,
            group_size=4,
        ),
        DatasetSpec(
            name="facebook",
            n_nodes=4313,
            n_links=42346,
            span=366,
            description="Facebook wall posts (celebrity hubs, sparse)",
            repeat_prob=0.35,
            closure_prob=0.05,
            pa_prob=0.45,
            activity_exponent=1.0,
        ),
        DatasetSpec(
            name="co-author",
            n_nodes=744,
            n_links=7034,
            span=20,
            description="DBLP co-authorship (research groups, yearly)",
            repeat_prob=0.30,
            closure_prob=0.25,
            pa_prob=0.25,
            activity_exponent=0.6,
            community_count=60,
            community_bias=0.9,
            final_fraction=0.05,
            group_event_prob=0.50,
            group_size=3,
        ),
        DatasetSpec(
            name="prosper",
            n_nodes=1264,
            n_links=8874,
            span=60,
            description="Prosper.com loans (bipartite lender-borrower)",
            repeat_prob=0.10,
            closure_prob=0.0,
            pa_prob=0.45,
            activity_exponent=0.8,
            final_fraction=0.04,
            bipartite_fraction=0.25,
        ),
        DatasetSpec(
            name="slashdot",
            n_nodes=2680,
            n_links=9904,
            span=240,
            description="Slashdot replies (strong hubs, very sparse)",
            repeat_prob=0.10,
            closure_prob=0.03,
            pa_prob=0.60,
            activity_exponent=1.0,
            final_fraction=0.04,
        ),
        DatasetSpec(
            name="digg",
            n_nodes=3215,
            n_links=9618,
            span=240,
            description="Digg replies (strong hubs, sparsest)",
            repeat_prob=0.08,
            closure_prob=0.03,
            pa_prob=0.55,
            activity_exponent=1.0,
            final_fraction=0.04,
        ),
    )
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name (case-insensitive)."""
    try:
        return DATASETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None


def dataset_statistics(network: DynamicNetwork, time_span: "int | None" = None) -> dict:
    """The Table II statistics row for a generated/loaded network."""
    stats = {
        "nodes": network.number_of_nodes(),
        "links": network.number_of_links(),
        "pairs": network.number_of_pairs(),
        "avg_degree": round(average_degree(network), 2),
    }
    if network.number_of_links():
        observed_span = network.last_timestamp() - network.first_timestamp() + 1
        stats["time_span"] = int(time_span if time_span is not None else observed_span)
    else:
        stats["time_span"] = 0
    return stats

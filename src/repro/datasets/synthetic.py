"""Temporal event-model generator for synthetic dynamic networks.

One engine covers all seven dataset families of Table II.  Links are
generated as a stream of events; for each event a *source* is drawn from a
heterogeneous activity distribution and a *target* is drawn from a mixture
of four partner mechanisms, the relative weights of which define the
topology family:

* **repeat** — re-contact an existing partner (creates the multi-links
  that dominate email/contact networks),
* **closure** — pick a partner's partner (triadic closure; co-authorship),
* **preferential attachment** — degree-proportional choice (celebrity
  hubs in wall-post and reply networks),
* **uniform** — a uniformly random node (background noise, sparsity).

An optional community layout biases non-repeat choices toward the
source's community (research groups in the co-author network).
Timestamps increase monotonically over ``1..span``; a configurable
fraction of events lands exactly on the final timestamp so the
link-prediction split (positives = links at the last timestamp,
Sec. VI-C2) has a usable sample on every dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.temporal import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class EventModelConfig:
    """Knobs of the temporal event model.

    Attributes:
        n_nodes: number of nodes (all created up front; nodes without
            links are dropped from the final network, as in real dumps).
        n_links: total number of timestamped link events.
        span: number of timestamps; events cover ``1..span``.
        repeat_prob: probability an event re-contacts an existing partner.
        closure_prob: probability an event closes a triangle.
        pa_prob: probability the new partner is degree-proportional.
            The remaining mass picks a uniformly random node.
        activity_exponent: source heterogeneity; node activity weights are
            ``rank^(-exponent)`` (0 = homogeneous, 1 ≈ Zipf).
        community_count: number of communities (0 disables communities).
        community_bias: probability a non-repeat partner choice is
            restricted to the source's community.
        final_fraction: fraction of events pinned to the final timestamp.
        recency_bias: probability that a repeat/closure draw looks only at
            the source's *most recent* partner events instead of its whole
            history.  Real interaction networks are bursty — conversations
            and collaborations cluster in time — and this is the property
            that makes the exponential influence decay (Eq. 2) informative.
        recency_window: how many of the latest partner events a
            recency-biased draw considers.
        group_event_prob: probability an event is a *group event* — a
            gathering (proximity contact), an email thread, or a
            multi-author paper — which lays down a small clique at one
            timestamp.  Group events are what make dense real-world
            networks predictable from surrounding structure rather than
            from the pair's own history: the members share recent common
            neighbours.  Each clique edge consumes one unit of the
            ``n_links`` budget.
        group_size: number of participants in a group event.
        bipartite_fraction: when > 0, nodes are split into two roles
            (this fraction on side A, e.g. lenders) and every link must
            cross sides — the Prosper loan-network family, where new
            links never share a common neighbour (the graph is bipartite)
            and local heuristics like CN collapse.  Closure and group
            events are disabled implicitly (both would create same-side
            links).
    """

    n_nodes: int
    n_links: int
    span: int
    repeat_prob: float = 0.3
    closure_prob: float = 0.2
    pa_prob: float = 0.3
    activity_exponent: float = 0.8
    community_count: int = 0
    community_bias: float = 0.8
    final_fraction: float = 0.03
    recency_bias: float = 0.7
    recency_window: int = 5
    group_event_prob: float = 0.0
    group_size: int = 4
    bipartite_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes < 3:
            raise ValueError(f"n_nodes must be >= 3, got {self.n_nodes}")
        if self.n_links < 1:
            raise ValueError(f"n_links must be >= 1, got {self.n_links}")
        if self.span < 2:
            raise ValueError(f"span must be >= 2, got {self.span}")
        for name in ("repeat_prob", "closure_prob", "pa_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.repeat_prob + self.closure_prob + self.pa_prob > 1.0 + 1e-9:
            raise ValueError("repeat + closure + pa probabilities must be <= 1")
        if self.activity_exponent < 0:
            raise ValueError("activity_exponent must be >= 0")
        if self.community_count < 0:
            raise ValueError("community_count must be >= 0")
        if not 0.0 <= self.community_bias <= 1.0:
            raise ValueError("community_bias must be in [0, 1]")
        if not 0.0 <= self.final_fraction < 1.0:
            raise ValueError("final_fraction must be in [0, 1)")
        if not 0.0 <= self.recency_bias <= 1.0:
            raise ValueError("recency_bias must be in [0, 1]")
        if self.recency_window < 1:
            raise ValueError("recency_window must be >= 1")
        if not 0.0 <= self.group_event_prob <= 1.0:
            raise ValueError("group_event_prob must be in [0, 1]")
        if self.group_size < 3:
            raise ValueError("group_size must be >= 3 (a pair is not a group)")
        if not 0.0 <= self.bipartite_fraction < 1.0:
            raise ValueError("bipartite_fraction must be in [0, 1)")
        if self.bipartite_fraction and (self.closure_prob or self.group_event_prob):
            raise ValueError(
                "bipartite networks cannot use closure or group events "
                "(both create same-side links)"
            )


def generate_event_network(
    config: EventModelConfig,
    seed: RngLike = 0,
) -> DynamicNetwork:
    """Generate a :class:`DynamicNetwork` from the event model.

    Deterministic for a fixed ``(config, seed)``.
    """
    rng = ensure_rng(seed)
    n = config.n_nodes

    # Heterogeneous activity: Zipf-like weights over a random node order,
    # so the most active nodes are not always the lowest ids.
    ranks = rng.permutation(n) + 1
    weights = ranks.astype(np.float64) ** -config.activity_exponent
    weights /= weights.sum()

    side: "np.ndarray | None" = None
    if config.bipartite_fraction:
        side = np.zeros(n, dtype=bool)
        side[rng.permutation(n)[: max(1, int(n * config.bipartite_fraction))]] = True

    communities = (
        rng.integers(0, config.community_count, size=n)
        if config.community_count
        else None
    )
    community_members: "list[np.ndarray] | None" = None
    if communities is not None:
        community_members = [
            np.flatnonzero(communities == c) for c in range(config.community_count)
        ]

    partners: list[list[int]] = [[] for _ in range(n)]
    endpoint_pool: list[int] = []  # each event appends both endpoints → PA draws
    network = DynamicNetwork()

    timestamps = _event_timestamps(config, rng)
    sources = rng.choice(n, size=config.n_links, p=weights)
    mech_draws = rng.random(config.n_links)

    def record(u: int, v: int, link_index: int) -> None:
        network.add_edge(u, v, timestamps[link_index])
        partners[u].append(v)
        partners[v].append(u)
        endpoint_pool.append(u)
        endpoint_pool.append(v)

    link_index = 0
    while link_index < config.n_links:
        u = int(sources[link_index])
        if rng.random() < config.group_event_prob:
            members = _group_members(u, config, rng, partners)
            for x, y in _clique_pairs(members, rng):
                record(x, y, link_index)
                link_index += 1
                if link_index >= config.n_links:
                    break
            continue
        v = _draw_partner(
            u,
            mech_draws[link_index],
            config,
            rng,
            partners,
            endpoint_pool,
            communities,
            community_members,
            side,
        )
        record(u, v, link_index)
        link_index += 1
    return network


def _group_members(
    u: int,
    config: EventModelConfig,
    rng: np.random.Generator,
    partners: list[list[int]],
) -> list[int]:
    """Participants of a group event hosted by ``u``.

    Members are drawn (recency-biased) from the host's partners so groups
    recur — the property that makes group structure predictive — with
    uniform fallbacks when the host is new.
    """
    members = [u]
    seen = {u}
    attempts = 0
    while len(members) < config.group_size and attempts < 8 * config.group_size:
        attempts += 1
        if partners[u] and rng.random() < 0.8:
            pick = _recency_choice(partners[u], config, rng)
        else:
            pick = int(rng.integers(config.n_nodes))
        if pick not in seen:
            seen.add(pick)
            members.append(pick)
    return members


def _clique_pairs(
    members: list[int], rng: np.random.Generator
) -> list[tuple[int, int]]:
    """All pairs of a group event, in random order (budget may truncate)."""
    pairs = [
        (members[i], members[j])
        for i in range(len(members))
        for j in range(i + 1, len(members))
    ]
    rng.shuffle(pairs)
    return pairs


def _event_timestamps(config: EventModelConfig, rng: np.random.Generator) -> np.ndarray:
    """Monotone timestamps over ``1..span`` with a final-timestamp burst."""
    n_final = int(round(config.n_links * config.final_fraction))
    n_body = config.n_links - n_final
    if n_body > 0:
        body = 1 + (np.arange(n_body, dtype=np.int64) * (config.span - 1)) // max(
            n_body, 1
        )
        body = np.minimum(body, config.span - 1)
    else:
        body = np.zeros(0, dtype=np.int64)
    final = np.full(n_final, config.span, dtype=np.int64)
    return np.concatenate([body, final]).astype(np.float64)


def _pa_choice(
    endpoint_pool: list[int], config: EventModelConfig, rng: np.random.Generator
) -> int:
    """Degree-proportional draw, biased toward *recent* activity.

    With probability ``recency_bias`` the draw is restricted to the most
    recent tenth of link endpoints — hub drift: stories/posts rise and
    fall, so static link counts go stale while temporally decayed
    influence tracks the current hubs.  Index arithmetic avoids copying
    the pool.
    """
    size = len(endpoint_pool)
    if rng.random() < config.recency_bias:
        window = min(size, max(200, size // 10))
        return endpoint_pool[size - window + int(rng.integers(window))]
    return endpoint_pool[int(rng.integers(size))]


def _recency_choice(
    events: list[int], config: EventModelConfig, rng: np.random.Generator
) -> int:
    """Pick a partner event, biased toward the most recent ones.

    ``partners[u]`` is append-ordered, so the tail holds the latest
    interactions; with probability ``recency_bias`` the draw is restricted
    to the last ``recency_window`` events (burstiness), otherwise it is
    uniform over the whole history.
    """
    if rng.random() < config.recency_bias:
        window = min(config.recency_window, len(events))
        return events[len(events) - window + int(rng.integers(window))]
    return events[int(rng.integers(len(events)))]


def _draw_partner(
    u: int,
    mechanism_draw: float,
    config: EventModelConfig,
    rng: np.random.Generator,
    partners: list[list[int]],
    endpoint_pool: list[int],
    communities: "np.ndarray | None",
    community_members: "list[np.ndarray] | None",
    side: "np.ndarray | None" = None,
) -> int:
    """Pick the event's second endpoint by the configured mixture."""
    own = partners[u]

    if mechanism_draw < config.repeat_prob and own:
        return int(_recency_choice(own, config, rng))

    if mechanism_draw < config.repeat_prob + config.closure_prob and own:
        middle = _recency_choice(own, config, rng)
        candidates = partners[middle]
        if candidates:
            pick = int(_recency_choice(candidates, config, rng))
            if pick != u:
                return pick
        # fall through to attachment when no triangle can be closed

    use_pa = (
        mechanism_draw
        < config.repeat_prob + config.closure_prob + config.pa_prob
    )
    restrict = (
        communities is not None
        and community_members is not None
        and rng.random() < config.community_bias
    )
    for _ in range(20):
        if use_pa and endpoint_pool:
            pick = int(_pa_choice(endpoint_pool, config, rng))
        elif restrict:
            members = community_members[int(communities[u])]  # type: ignore[index]
            pick = int(members[rng.integers(len(members))])
        else:
            pick = int(rng.integers(config.n_nodes))
        if pick == u:
            continue
        if side is not None and side[pick] == side[u]:
            continue  # bipartite: links must cross sides
        if restrict and use_pa and communities is not None:
            if communities[pick] != communities[u]:
                continue  # PA draw landed outside the community; retry
        return pick
    # Rejection failed (tiny community / heavy hub / one-sided pool).
    if side is not None:
        opposite = np.flatnonzero(side != side[u])
        return int(opposite[rng.integers(len(opposite))])
    pick = int(rng.integers(config.n_nodes - 1))
    return pick if pick < u else pick + 1

"""Dynamic-network datasets: synthetic generators and file loaders.

The paper evaluates on 7 public dynamic networks (Table II).  Those files
are not available offline, so :mod:`repro.datasets.synthetic` provides a
temporal event-model generator whose knobs (partner repetition, triadic
closure, preferential attachment, community structure, final-burst mass)
reproduce each network's topological family, and
:mod:`repro.datasets.catalog` pins one calibrated configuration per
dataset.  :mod:`repro.datasets.loaders` runs the same pipeline on real
KONECT/TSV files when they are present.
"""

from repro.datasets.catalog import DATASETS, DatasetSpec, dataset_statistics, get_dataset
from repro.datasets.loaders import load_dataset_file
from repro.datasets.synthetic import EventModelConfig, generate_event_network

__all__ = [
    "EventModelConfig",
    "generate_event_network",
    "DatasetSpec",
    "DATASETS",
    "get_dataset",
    "dataset_statistics",
    "load_dataset_file",
]

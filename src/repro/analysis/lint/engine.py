"""Rule engine of the repro lint toolchain.

The engine parses each file once, walks the AST in source order, and
dispatches every node to each applicable rule through ``visit_<Node>``
hook methods (the pylint-checker idiom, minus the plugin machinery this
repo does not need).  Rules are stateless between modules: the engine
calls :meth:`Rule.begin_module` / :meth:`Rule.finish_module` around each
file so per-module state never leaks.

Suppressions are comments of the form::

    x = risky()  # repro-lint: disable=R101 -- canonicalised two lines up

A suppression must name existing rules and carry a reason after ``--``;
a missing reason (R002) or unknown rule id (R001) is itself reported and
the suppression is ignored, and a suppression that matched no violation
is reported as unused (R003) so stale pragmas cannot accumulate.  A
comment on its own line suppresses the next statement line instead.

Since PR 8 the engine is **two-pass**: pass 1 parses every file once and
builds a :class:`~repro.analysis.lint.callgraph.ProjectIndex` (symbol
table + call graph); pass 2 walks each module with the project index in
scope, which is what powers the R5xx/R6xx dataflow families and the
edge-checked R2xx forwarding rules.  ``lint_paths(project=False)``
restores the old single-pass behaviour (the ``--no-project`` escape
hatch); :func:`lint_source` builds a single-module index so every rule
works on isolated snippets too.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.analysis.lint.callgraph import (
    ProjectIndex,
    build_project_index,
    source_fingerprint,
)

__all__ = [
    "LintReport",
    "ModuleContext",
    "Rule",
    "Suppression",
    "Violation",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "iter_python_files",
    "load_index_cache",
    "save_index_cache",
]

#: ids reserved for the engine's own diagnostics (suppression hygiene).
META_RULE_IDS = ("R001", "R002", "R003")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+?)(?:\s*--\s*(.*))?$"
)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to a source line."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str
    #: resolved callee chain for project-pass findings whose evidence
    #: lives in a callee (e.g. ``"parallel_extract_batch>heartbeat_tick"``);
    #: empty for purely local findings.
    chain: str = ""

    def format(self) -> str:
        via = f"  [via {self.chain}]" if self.chain else ""
        return (
            f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}{via}"
        )

    def to_json(self) -> dict[str, object]:
        return dataclasses.asdict(self)

    def key(self) -> tuple[str, str, str, str]:
        """Line-number-insensitive identity used by the baseline.

        Violations are matched on ``(path, rule, snippet, chain)`` so
        unrelated edits that shift line numbers do not churn the
        baseline, while project-pass findings that differ only in the
        callee chain stay distinct (baseline schema v2).
        """
        return (self.path, self.rule, self.snippet, self.chain)


@dataclasses.dataclass
class Suppression:
    """A parsed ``repro-lint: disable`` pragma."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


class ModuleContext:
    """Everything a rule may read or write while visiting one module."""

    def __init__(
        self,
        path: str,
        module: str,
        source: str,
        tree: ast.Module,
        *,
        project: "ProjectIndex | None" = None,
    ) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.project = project
        self.source_lines = source.splitlines()
        self.violations: list[Violation] = []
        self.suppressions: list[Suppression] = []
        self._suppressed_lines: dict[int, Suppression] = {}
        self._parse_suppressions(source)

    # ------------------------------------------------------------------
    # suppression handling
    # ------------------------------------------------------------------
    def _parse_suppressions(self, source: str) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except tokenize.TokenError:  # pragma: no cover - ast.parse caught it
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            reason = (match.group(2) or "").strip()
            line = token.start[0]
            own_line = not token.line[: token.start[1]].strip()
            suppression = Suppression(line=line, rules=rules, reason=reason)
            self.suppressions.append(suppression)
            # A comment-only line shields the next line (the statement it
            # annotates); an end-of-line comment shields its own line.
            self._suppressed_lines[line + 1 if own_line else line] = suppression

    def _suppression_for(self, rule_id: str, line: int) -> "Suppression | None":
        suppression = self._suppressed_lines.get(line)
        if suppression is None or rule_id not in suppression.rules:
            return None
        if not suppression.reason:
            return None  # reason is mandatory; R002 reports the omission
        return suppression

    def check_suppression_hygiene(self, known_rules: Iterable[str]) -> None:
        """Emit the meta violations R001/R002/R003 for this module."""
        known = set(known_rules) | set(META_RULE_IDS)
        for suppression in self.suppressions:
            unknown = [rule for rule in suppression.rules if rule not in known]
            if unknown:
                self._report_meta(
                    "R001",
                    suppression.line,
                    f"suppression names unknown rule(s) {', '.join(unknown)}",
                )
            if not suppression.reason:
                self._report_meta(
                    "R002",
                    suppression.line,
                    "suppression must carry a reason: "
                    "`# repro-lint: disable=Rxxx -- why`",
                )
            elif not unknown and not suppression.used:
                self._report_meta(
                    "R003",
                    suppression.line,
                    f"unused suppression for {', '.join(suppression.rules)}; "
                    "remove the stale pragma",
                )

    def _report_meta(self, rule_id: str, line: int, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule_id,
                path=self.path,
                line=line,
                column=0,
                message=message,
                snippet=self.snippet(line),
            )
        )

    # ------------------------------------------------------------------
    # reporting API used by rules
    # ------------------------------------------------------------------
    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def report(
        self, rule: "Rule", node: ast.AST, message: str, *, chain: str = ""
    ) -> None:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        suppression = self._suppression_for(rule.id, line)
        if suppression is not None:
            suppression.used = True
            return
        self.violations.append(
            Violation(
                rule=rule.id,
                path=self.path,
                line=line,
                column=column,
                message=message,
                snippet=self.snippet(line),
                chain=chain,
            )
        )


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement any number of
    ``visit_<NodeType>`` hooks; the engine calls them in source order.
    ``scope`` is a tuple of dotted module prefixes the rule applies to
    (``("repro",)`` means the whole library).
    """

    id: str = ""
    name: str = ""
    summary: str = ""
    #: dotted module prefixes; the sentinel ``"*"`` matches every module
    #: (used by the relaxed profile over scripts/benchmarks/tests, whose
    #: files carry bare-stem module names no dotted prefix matches).
    scope: tuple[str, ...] = ("repro",)

    def applies_to(self, module: str) -> bool:
        if "*" in self.scope:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def begin_project(self, project: ProjectIndex) -> None:
        """Hook called once per run with the pass-1 project index.

        Called before any module is walked; project-aware rules stash
        the index (and any derived sets) on ``self`` here.
        """

    def begin_module(self, ctx: ModuleContext) -> None:
        """Hook called before the walk (reset per-module state here)."""

    def finish_module(self, ctx: ModuleContext) -> None:
        """Hook called after the walk (flush pending reports here)."""


@dataclasses.dataclass
class LintReport:
    """Outcome of linting a set of files."""

    violations: list[Violation]
    files_checked: int

    def count(self) -> int:
        return len(self.violations)

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        lines = [violation.format() for violation in self.violations]
        summary = ", ".join(f"{rule}: {n}" for rule, n in self.by_rule().items())
        lines.append(
            f"{self.count()} violation(s) in {self.files_checked} file(s)"
            + (f"  [{summary}]" if summary else "")
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "violations": [v.to_json() for v in self.violations],
                "by_rule": self.by_rule(),
            },
            indent=2,
            sort_keys=True,
        )


# ----------------------------------------------------------------------
# walking
# ----------------------------------------------------------------------
def _dispatch(rules: Sequence[Rule], ctx: ModuleContext) -> None:
    """One source-order walk, multiplexed over every applicable rule."""
    handlers: dict[str, list[Callable[[ModuleContext, ast.AST], None]]] = {}
    for rule in rules:
        for attr in dir(rule):
            if attr.startswith("visit_"):
                handlers.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule, attr)
                )

    def walk(node: ast.AST) -> None:
        for handler in handlers.get(type(node).__name__, ()):
            handler(ctx, node)
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(ctx.tree)


def module_name_for(path: "Path | str") -> str:
    """Dotted module name derived from a file path.

    The name starts at the last path component named ``repro`` so both
    ``src/repro/core/feature.py`` and test fixtures staged under
    ``tests/analysis/fixtures/repro/core/bad.py`` resolve to a
    ``repro.core.*`` name (fixtures opt into the scoped rules by
    mirroring the package layout).  Files outside any ``repro`` tree
    keep their stem as the module name, which no scoped rule matches.
    """
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _lint_module(
    source: str,
    tree: ast.Module,
    rules: Sequence[Rule],
    *,
    path: str,
    module: str,
    project: "ProjectIndex | None",
    known_rule_ids: Iterable[str],
) -> list[Violation]:
    """Pass-2 walk of one already-parsed module."""
    ctx = ModuleContext(
        path=path, module=module, source=source, tree=tree, project=project
    )
    active = [rule for rule in rules if rule.applies_to(module)]
    for rule in active:
        rule.begin_module(ctx)
    _dispatch(active, ctx)
    for rule in active:
        rule.finish_module(ctx)
    ctx.check_suppression_hygiene(known_rule_ids)
    ctx.violations.sort(key=lambda v: (v.line, v.column, v.rule))
    return ctx.violations


def lint_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: str = "<string>",
    module: "str | None" = None,
    project: "ProjectIndex | None" = None,
) -> list[Violation]:
    """Lint one source string (the importable API and the test entry).

    When no ``project`` index is supplied a single-module index is built
    from the snippet itself, so the project-pass rules (R2xx forwarding,
    R5xx, R6xx) see intra-module call edges even on isolated sources.
    """
    if module is None:
        module = module_name_for(path)
    tree = ast.parse(source, filename=path)
    if project is None:
        project = build_project_index([(module, path, tree)])
    for rule in rules:
        rule.begin_project(project)
    return _lint_module(
        source,
        tree,
        rules,
        path=path,
        module=module,
        project=project,
        known_rule_ids=[rule.id for rule in rules],
    )


def iter_python_files(
    paths: Iterable["Path | str"],
    *,
    exclude_parts: tuple[str, ...] = ("__pycache__",),
) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order.

    ``exclude_parts`` skips any file with a matching path component —
    the relaxed sweep uses it to keep deliberately-bad test fixtures
    out of the repo-wide run.
    """
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p
                for p in path.rglob("*.py")
                if not any(part in p.parts for part in exclude_parts)
            )
        elif path.suffix == ".py":
            if not any(part in path.parts for part in exclude_parts):
                yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


#: path components never linted by directory sweeps.
RELAXED_EXCLUDE_PARTS: tuple[str, ...] = ("__pycache__", "fixtures")

_INDEX_CACHE_VERSION = 1


def load_index_cache(
    cache_path: "Path | str", fingerprint: str
) -> "ProjectIndex | None":
    """Load a cached pass-1 index if it matches ``fingerprint``."""
    path = Path(cache_path)
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if (
        raw.get("version") != _INDEX_CACHE_VERSION
        or raw.get("fingerprint") != fingerprint
    ):
        return None
    try:
        return ProjectIndex.from_payload(raw["index"])
    except (KeyError, TypeError, ValueError):
        return None


def save_index_cache(
    cache_path: "Path | str", fingerprint: str, index: ProjectIndex
) -> None:
    """Persist the pass-1 index for the next run (best effort)."""
    payload = {
        "version": _INDEX_CACHE_VERSION,
        "fingerprint": fingerprint,
        "index": index.to_payload(),
    }
    path = Path(cache_path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    except OSError:
        pass  # a cold cache next run is the only consequence


@dataclasses.dataclass
class _ParsedFile:
    display: str
    module: str
    source: str
    tree: ast.Module
    relaxed: bool


def lint_paths(
    paths: Iterable["Path | str"],
    rules: Sequence[Rule],
    *,
    relative_to: "Path | None" = None,
    project: bool = True,
    relaxed_paths: Iterable["Path | str"] = (),
    relaxed_rules: "Sequence[Rule] | None" = None,
    index_cache: "Path | str | None" = None,
) -> LintReport:
    """Lint every python file under ``paths`` (two-pass by default).

    Args:
        paths: files and/or directories linted with the full ``rules``.
        rules: the strict-profile rule set.
        relative_to: when given, report paths relative to this root so
            baselines stay machine-independent (defaults to the current
            working directory when files lie beneath it).
        project: run pass 1 (symbol table + call graph) and hand the
            index to every rule via ``begin_project``.  ``False`` is the
            ``--no-project`` escape hatch: project-aware checks degrade
            to their local approximations.
        relaxed_paths: extra files/directories linted with
            ``relaxed_rules`` instead of ``rules`` (the
            scripts/benchmarks/tests profile).  Fixture directories are
            excluded.  Files also matched by ``paths`` keep the strict
            profile.
        relaxed_rules: rule set for ``relaxed_paths``.
        index_cache: optional path of a pass-1 index cache file, keyed
            by a source fingerprint (the CI wall-clock budget lever).
    """
    root = Path(relative_to) if relative_to is not None else Path.cwd()
    relaxed_rules = list(relaxed_rules or [])

    def display_for(file_path: Path) -> str:
        try:
            return file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            return file_path.as_posix()

    parsed: list[_ParsedFile] = []
    seen_displays: set[str] = set()
    for relaxed, group, excludes in (
        (False, paths, ("__pycache__",)),
        (True, relaxed_paths, RELAXED_EXCLUDE_PARTS),
    ):
        for file_path in iter_python_files(group, exclude_parts=excludes):
            display = display_for(file_path)
            if display in seen_displays:
                continue
            seen_displays.add(display)
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=display)
            parsed.append(
                _ParsedFile(
                    display=display,
                    module=module_name_for(display),
                    source=source,
                    tree=tree,
                    relaxed=relaxed,
                )
            )

    index: "ProjectIndex | None" = None
    if project:
        if index_cache is not None:
            fingerprint = source_fingerprint(
                [(f.display, f.source) for f in parsed]
            )
            index = load_index_cache(index_cache, fingerprint)
            if index is None:
                index = build_project_index(
                    (f.module, f.display, f.tree) for f in parsed
                )
                save_index_cache(index_cache, fingerprint, index)
        else:
            index = build_project_index(
                (f.module, f.display, f.tree) for f in parsed
            )
        for rule in list(rules) + relaxed_rules:
            rule.begin_project(index)

    known_rule_ids = sorted(
        {rule.id for rule in rules} | {rule.id for rule in relaxed_rules}
    )
    violations: list[Violation] = []
    for file in parsed:
        violations.extend(
            _lint_module(
                file.source,
                file.tree,
                relaxed_rules if file.relaxed else rules,
                path=file.display,
                module=file.module,
                project=index,
                known_rule_ids=known_rule_ids,
            )
        )
    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return LintReport(violations=violations, files_checked=len(parsed))

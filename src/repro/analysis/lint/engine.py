"""Rule engine of the repro lint toolchain.

The engine parses each file once, walks the AST in source order, and
dispatches every node to each applicable rule through ``visit_<Node>``
hook methods (the pylint-checker idiom, minus the plugin machinery this
repo does not need).  Rules are stateless between modules: the engine
calls :meth:`Rule.begin_module` / :meth:`Rule.finish_module` around each
file so per-module state never leaks.

Suppressions are comments of the form::

    x = risky()  # repro-lint: disable=R101 -- canonicalised two lines up

A suppression must name existing rules and carry a reason after ``--``;
a missing reason (R002) or unknown rule id (R001) is itself reported and
the suppression is ignored, and a suppression that matched no violation
is reported as unused (R003) so stale pragmas cannot accumulate.  A
comment on its own line suppresses the next statement line instead.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import json
import re
import tokenize
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "LintReport",
    "ModuleContext",
    "Rule",
    "Suppression",
    "Violation",
    "lint_paths",
    "lint_source",
    "module_name_for",
    "iter_python_files",
]

#: ids reserved for the engine's own diagnostics (suppression hygiene).
META_RULE_IDS = ("R001", "R002", "R003")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9,\s]+?)(?:\s*--\s*(.*))?$"
)


@dataclasses.dataclass(frozen=True)
class Violation:
    """One rule hit, pinned to a source line."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    snippet: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_json(self) -> dict[str, object]:
        return dataclasses.asdict(self)

    def key(self) -> tuple[str, str, str]:
        """Line-number-insensitive identity used by the baseline.

        Violations are matched on ``(path, rule, snippet)`` so unrelated
        edits that shift line numbers do not churn the baseline.
        """
        return (self.path, self.rule, self.snippet)


@dataclasses.dataclass
class Suppression:
    """A parsed ``repro-lint: disable`` pragma."""

    line: int
    rules: tuple[str, ...]
    reason: str
    used: bool = False


class ModuleContext:
    """Everything a rule may read or write while visiting one module."""

    def __init__(self, path: str, module: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        self.source_lines = source.splitlines()
        self.violations: list[Violation] = []
        self.suppressions: list[Suppression] = []
        self._suppressed_lines: dict[int, Suppression] = {}
        self._parse_suppressions(source)

    # ------------------------------------------------------------------
    # suppression handling
    # ------------------------------------------------------------------
    def _parse_suppressions(self, source: str) -> None:
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except tokenize.TokenError:  # pragma: no cover - ast.parse caught it
            return
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            reason = (match.group(2) or "").strip()
            line = token.start[0]
            own_line = not token.line[: token.start[1]].strip()
            suppression = Suppression(line=line, rules=rules, reason=reason)
            self.suppressions.append(suppression)
            # A comment-only line shields the next line (the statement it
            # annotates); an end-of-line comment shields its own line.
            self._suppressed_lines[line + 1 if own_line else line] = suppression

    def _suppression_for(self, rule_id: str, line: int) -> "Suppression | None":
        suppression = self._suppressed_lines.get(line)
        if suppression is None or rule_id not in suppression.rules:
            return None
        if not suppression.reason:
            return None  # reason is mandatory; R002 reports the omission
        return suppression

    def check_suppression_hygiene(self, known_rules: Iterable[str]) -> None:
        """Emit the meta violations R001/R002/R003 for this module."""
        known = set(known_rules) | set(META_RULE_IDS)
        for suppression in self.suppressions:
            unknown = [rule for rule in suppression.rules if rule not in known]
            if unknown:
                self._report_meta(
                    "R001",
                    suppression.line,
                    f"suppression names unknown rule(s) {', '.join(unknown)}",
                )
            if not suppression.reason:
                self._report_meta(
                    "R002",
                    suppression.line,
                    "suppression must carry a reason: "
                    "`# repro-lint: disable=Rxxx -- why`",
                )
            elif not unknown and not suppression.used:
                self._report_meta(
                    "R003",
                    suppression.line,
                    f"unused suppression for {', '.join(suppression.rules)}; "
                    "remove the stale pragma",
                )

    def _report_meta(self, rule_id: str, line: int, message: str) -> None:
        self.violations.append(
            Violation(
                rule=rule_id,
                path=self.path,
                line=line,
                column=0,
                message=message,
                snippet=self.snippet(line),
            )
        )

    # ------------------------------------------------------------------
    # reporting API used by rules
    # ------------------------------------------------------------------
    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def report(self, rule: "Rule", node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        suppression = self._suppression_for(rule.id, line)
        if suppression is not None:
            suppression.used = True
            return
        self.violations.append(
            Violation(
                rule=rule.id,
                path=self.path,
                line=line,
                column=column,
                message=message,
                snippet=self.snippet(line),
            )
        )


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement any number of
    ``visit_<NodeType>`` hooks; the engine calls them in source order.
    ``scope`` is a tuple of dotted module prefixes the rule applies to
    (``("repro",)`` means the whole library).
    """

    id: str = ""
    name: str = ""
    summary: str = ""
    scope: tuple[str, ...] = ("repro",)

    def applies_to(self, module: str) -> bool:
        return any(
            module == prefix or module.startswith(prefix + ".")
            for prefix in self.scope
        )

    def begin_module(self, ctx: ModuleContext) -> None:
        """Hook called before the walk (reset per-module state here)."""

    def finish_module(self, ctx: ModuleContext) -> None:
        """Hook called after the walk (flush pending reports here)."""


@dataclasses.dataclass
class LintReport:
    """Outcome of linting a set of files."""

    violations: list[Violation]
    files_checked: int

    def count(self) -> int:
        return len(self.violations)

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        lines = [violation.format() for violation in self.violations]
        summary = ", ".join(f"{rule}: {n}" for rule, n in self.by_rule().items())
        lines.append(
            f"{self.count()} violation(s) in {self.files_checked} file(s)"
            + (f"  [{summary}]" if summary else "")
        )
        return "\n".join(lines)

    def format_json(self) -> str:
        return json.dumps(
            {
                "files_checked": self.files_checked,
                "violations": [v.to_json() for v in self.violations],
                "by_rule": self.by_rule(),
            },
            indent=2,
            sort_keys=True,
        )


# ----------------------------------------------------------------------
# walking
# ----------------------------------------------------------------------
def _dispatch(rules: Sequence[Rule], ctx: ModuleContext) -> None:
    """One source-order walk, multiplexed over every applicable rule."""
    handlers: dict[str, list[Callable[[ModuleContext, ast.AST], None]]] = {}
    for rule in rules:
        for attr in dir(rule):
            if attr.startswith("visit_"):
                handlers.setdefault(attr[len("visit_"):], []).append(
                    getattr(rule, attr)
                )

    def walk(node: ast.AST) -> None:
        for handler in handlers.get(type(node).__name__, ()):
            handler(ctx, node)
        for child in ast.iter_child_nodes(node):
            walk(child)

    walk(ctx.tree)


def module_name_for(path: "Path | str") -> str:
    """Dotted module name derived from a file path.

    The name starts at the last path component named ``repro`` so both
    ``src/repro/core/feature.py`` and test fixtures staged under
    ``tests/analysis/fixtures/repro/core/bad.py`` resolve to a
    ``repro.core.*`` name (fixtures opt into the scoped rules by
    mirroring the package layout).  Files outside any ``repro`` tree
    keep their stem as the module name, which no scoped rule matches.
    """
    parts = Path(path).with_suffix("").parts
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def lint_source(
    source: str,
    rules: Sequence[Rule],
    *,
    path: str = "<string>",
    module: "str | None" = None,
) -> list[Violation]:
    """Lint one source string (the importable API and the test entry)."""
    if module is None:
        module = module_name_for(path)
    tree = ast.parse(source, filename=path)
    ctx = ModuleContext(path=path, module=module, source=source, tree=tree)
    active = [rule for rule in rules if rule.applies_to(module)]
    for rule in active:
        rule.begin_module(ctx)
    _dispatch(active, ctx)
    for rule in active:
        rule.finish_module(ctx)
    ctx.check_suppression_hygiene([rule.id for rule in rules])
    ctx.violations.sort(key=lambda v: (v.line, v.column, v.rule))
    return ctx.violations


def iter_python_files(paths: Iterable["Path | str"]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` in sorted order."""
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )
        elif path.suffix == ".py":
            yield path
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")


def lint_paths(
    paths: Iterable["Path | str"],
    rules: Sequence[Rule],
    *,
    relative_to: "Path | None" = None,
) -> LintReport:
    """Lint every python file under ``paths``.

    Args:
        paths: files and/or directories.
        rules: the rule set to run.
        relative_to: when given, report paths relative to this root so
            baselines stay machine-independent (defaults to the current
            working directory when files lie beneath it).
    """
    root = Path(relative_to) if relative_to is not None else Path.cwd()
    violations: list[Violation] = []
    files = 0
    for file_path in iter_python_files(paths):
        files += 1
        try:
            display = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            display = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, rules, path=display))
    violations.sort(key=lambda v: (v.path, v.line, v.column, v.rule))
    return LintReport(violations=violations, files_checked=files)

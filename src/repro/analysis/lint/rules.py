"""The repro lint rule catalog.

Rule families (see ``docs/STATIC_ANALYSIS.md`` for the full catalog):

* **R0xx** meta — suppression hygiene, emitted by the engine itself.
* **R1xx** determinism — hash-order iteration, ``hash()``, unseeded RNG.
* **R2xx** backend parity — ``backend=`` plumbing and dispatch coverage.
* **R3xx** API contracts — mutable defaults, bare except, span usage,
  annotation coverage.
* **R4xx** numeric hygiene — float equality on influence-scale values.

Every rule is deliberately heuristic: it inspects the AST, not types.
False negatives are acceptable (mypy and tests backstop them); false
positives are suppressable with a reasoned pragma.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence

from repro.analysis.lint.engine import ModuleContext, Rule

__all__ = ["default_rules", "rule_catalog", "ALL_RULE_IDS"]

#: the only values a backend selector may take (R202).
VALID_BACKENDS = frozenset({"auto", "dict", "csr"})

_BACKEND_NAME_RE = re.compile(r"(^|_)backend$")


def _call_name(node: ast.AST) -> "str | None":
    """Plain name of a called function: ``sorted`` for ``sorted(...)``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_backend_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return _BACKEND_NAME_RE.search(node.id) is not None
    if isinstance(node, ast.Attribute):
        return _BACKEND_NAME_RE.search(node.attr) is not None
    return False


def _string_literals(node: ast.AST) -> "list[str] | None":
    """String constants in a literal or literal collection, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[str] = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            out.append(element.value)
        return out
    return None


# ----------------------------------------------------------------------
# R1xx — determinism
# ----------------------------------------------------------------------
class SetIterationRule(Rule):
    """R101: iteration over sets (or explicit ``.keys()``) must be sorted.

    Set iteration order follows hash order; for str-keyed sets it varies
    with ``PYTHONHASHSEED``, which is exactly the class of bug fixed at
    ``structure.py`` (Palette-WL group adjacency).  Any ``for``-loop or
    comprehension whose iterable is a set expression must wrap it in
    ``sorted(...)`` — or feed it to an order-insensitive consumer
    (``min``/``max``/``any``/``all``/``len``/``set``/``frozenset``).
    ``sum`` is *not* order-insensitive here: float addition order changes
    low bits, which the backend differential tests treat as a failure.
    """

    id = "R101"
    name = "set-iteration-order"
    summary = "iterating a set/dict.keys() without sorted() in core/graph"
    scope = ("repro.core", "repro.graph")

    _SET_FUNCS = frozenset({"set", "frozenset"})
    _SET_METHODS = frozenset(
        {"intersection", "union", "difference", "symmetric_difference"}
    )
    _SET_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    #: order-insensitive consumers: a set expression directly inside one
    #: of these calls needs no sorting.
    _SAFE_CONSUMERS = frozenset(
        {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}
    )
    #: order-preserving wrappers: unwrap these to find the real iterable.
    _PASSTHROUGH = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})

    def _set_expr(self, node: ast.AST, set_names: "dict[str, str]") -> "str | None":
        """Describe why ``node`` is a set-valued expression, or ``None``."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        name = _call_name(node)
        if name in self._SET_FUNCS:
            return f"a {name}(...) call"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._SET_METHODS
        ):
            return f"a .{node.func.attr}(...) call"
        if isinstance(node, ast.Name) and node.id in set_names:
            return f"`{node.id}` ({set_names[node.id]})"
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            left = self._set_expr(node.left, set_names)
            right = self._set_expr(node.right, set_names)
            if left is not None or right is not None:
                return "a set operator expression"
        return None

    def _is_keys_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        )

    def _check_iterable(
        self,
        ctx: ModuleContext,
        iterable: ast.AST,
        set_names: "dict[str, str]",
    ) -> None:
        target = iterable
        while (
            isinstance(target, ast.Call)
            and _call_name(target) in self._PASSTHROUGH
            and target.args
        ):
            target = target.args[0]
        if self._is_keys_call(target):
            ctx.report(
                self,
                iterable,
                "iterating .keys() directly; use sorted(...) (or iterate "
                "the mapping itself if insertion order is intentional)",
            )
            return
        description = self._set_expr(target, set_names)
        if description is not None:
            ctx.report(
                self,
                iterable,
                f"iterating {description} in hash order; wrap in sorted(...)",
            )

    @staticmethod
    def _annotation_is_set(annotation: "ast.expr | None") -> bool:
        """True when a parameter annotation names a set type."""
        if annotation is None:
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
        if isinstance(annotation, ast.Subscript):
            return SetIterationRule._annotation_is_set(annotation.value)
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            head = annotation.value.split("[", 1)[0].strip()
            return head in ("set", "frozenset", "Set", "FrozenSet")
        return False

    def finish_module(self, ctx: ModuleContext) -> None:
        # Comprehensions fed straight into an order-insensitive consumer
        # (e.g. ``sorted(f(x) for x in node_set)``) are exempt.
        sanitized: set[int] = set()
        for node in ast.walk(ctx.tree):
            if _call_name(node) in self._SAFE_CONSUMERS:
                assert isinstance(node, ast.Call)
                for arg in node.args:
                    sanitized.add(id(arg))

        comprehensions = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        functions = (ast.FunctionDef, ast.AsyncFunctionDef)

        def walk(node: ast.AST, set_names: "dict[str, str]") -> None:
            if isinstance(node, functions):
                # Fresh scope: parameters shadow outer bindings; set-typed
                # annotations seed the tracker.
                inner = dict(set_names)
                arguments = node.args
                params = list(arguments.posonlyargs + arguments.args)
                params.extend(arguments.kwonlyargs)
                for param in params:
                    if self._annotation_is_set(param.annotation):
                        inner[param.arg] = "a set-typed parameter"
                    else:
                        inner.pop(param.arg, None)
                for star in (arguments.vararg, arguments.kwarg):
                    if star is not None:
                        inner.pop(star.arg, None)
                for child in ast.iter_child_nodes(node):
                    walk(child, inner)
                return
            if isinstance(node, ast.Lambda):
                inner = dict(set_names)
                for param in node.args.args:
                    inner.pop(param.arg, None)
                walk(node.body, inner)
                return
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    description = self._set_expr(node.value, set_names)
                    if description is not None:
                        set_names[target.id] = description
                    else:
                        set_names.pop(target.id, None)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    description = self._set_expr(node.value, set_names)
                    if description is not None:
                        set_names[node.target.id] = description
                    else:
                        set_names.pop(node.target.id, None)
            if isinstance(node, ast.For):
                self._check_iterable(ctx, node.iter, set_names)
            elif isinstance(node, comprehensions) and id(node) not in sanitized:
                for generator in node.generators:
                    self._check_iterable(ctx, generator.iter, set_names)
            for child in ast.iter_child_nodes(node):
                walk(child, set_names)

        walk(ctx.tree, {})


class BuiltinHashRule(Rule):
    """R102: no ``hash()`` in feature code.

    ``hash(str)`` is salted by ``PYTHONHASHSEED``; any feature or
    ordering derived from it differs between interpreter runs.  Use
    ``repro.graph.hashing`` digests or explicit sort keys instead.
    """

    id = "R102"
    name = "builtin-hash"
    summary = "hash() call in feature/graph code (PYTHONHASHSEED-salted)"
    scope = ("repro.core", "repro.graph", "repro.analysis")

    def visit_Call(self, ctx: ModuleContext, node: ast.Call) -> None:
        if _call_name(node) == "hash":
            ctx.report(
                self,
                node,
                "hash() is salted by PYTHONHASHSEED; use repro.graph.hashing "
                "digests or an explicit sort key",
            )


class UnseededRandomRule(Rule):
    """R103: all randomness flows through ``repro.utils.rng``.

    ``random.*`` and the legacy ``np.random.*`` module-level generators
    share hidden global state; experiments become unreproducible the
    moment two call sites interleave.  Accept an ``rng`` argument and
    normalise it with :func:`repro.utils.rng.ensure_rng`.
    """

    id = "R103"
    name = "unseeded-rng"
    summary = "random.* / np.random.* use outside repro.utils.rng"
    scope = ("repro",)

    _EXEMPT_MODULES = frozenset({"repro.utils.rng"})
    #: np.random attributes that are types, not stateful entry points.
    _ALLOWED_NP_ATTRS = frozenset({"Generator", "BitGenerator", "SeedSequence"})

    def applies_to(self, module: str) -> bool:
        return super().applies_to(module) and module not in self._EXEMPT_MODULES

    def visit_Import(self, ctx: ModuleContext, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("numpy.random"):
                ctx.report(
                    self,
                    node,
                    f"import of {alias.name!r}: route randomness through "
                    "repro.utils.rng (ensure_rng / spawn_rngs)",
                )

    def visit_ImportFrom(self, ctx: ModuleContext, node: ast.ImportFrom) -> None:
        if node.module == "random":
            ctx.report(
                self,
                node,
                "import from 'random': route randomness through repro.utils.rng",
            )
        elif node.module in ("numpy.random", "numpy"):
            flagged = [
                alias.name
                for alias in node.names
                if alias.name == "random" or (
                    node.module == "numpy.random"
                    and alias.name not in self._ALLOWED_NP_ATTRS
                )
            ]
            if flagged:
                ctx.report(
                    self,
                    node,
                    f"import of numpy.random name(s) {', '.join(flagged)}: "
                    "route randomness through repro.utils.rng",
                )

    def visit_Attribute(self, ctx: ModuleContext, node: ast.Attribute) -> None:
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy")
            and value.attr == "random"
            and node.attr not in self._ALLOWED_NP_ATTRS
        ):
            ctx.report(
                self,
                node,
                f"np.random.{node.attr} uses module-level RNG state; take an "
                "rng argument and normalise via repro.utils.rng.ensure_rng",
            )


# ----------------------------------------------------------------------
# R2xx — backend parity
# ----------------------------------------------------------------------
class BackendKwargRule(Rule):
    """R201: public extraction entry points accept and forward ``backend=``.

    The dict and csr substrates are interchangeable by contract; an entry
    point that hardcodes one silently forks the pipeline.
    """

    id = "R201"
    name = "backend-kwarg"
    summary = "extraction entry point missing/ignoring the backend parameter"
    scope = ("repro",)

    _ENTRY_FUNCTIONS = frozenset({"parallel_extract_batch", "batch_extract"})
    _ENTRY_CLASSES = frozenset({"SSFExtractor", "StreamingSSFPredictor"})
    _CONFIG_CLASSES = frozenset({"ExperimentConfig"})

    @staticmethod
    def _param_names(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
        args = node.args
        names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    @staticmethod
    def _forwards_backend(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id == "backend":
                    if isinstance(sub.ctx, ast.Load):
                        return True
        return False

    def _check_function(
        self,
        ctx: ModuleContext,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        label: str,
    ) -> None:
        if "backend" not in self._param_names(node):
            ctx.report(
                self,
                node,
                f"{label} must accept a backend= parameter "
                f"({'|'.join(sorted(VALID_BACKENDS))})",
            )
        elif not self._forwards_backend(node):
            ctx.report(
                self,
                node,
                f"{label} accepts backend= but never reads it; forward it to "
                "the extraction substrate",
            )

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        if node.name in self._ENTRY_FUNCTIONS:
            self._check_function(ctx, node, f"{node.name}()")

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        if node.name in self._ENTRY_FUNCTIONS:
            self._check_function(ctx, node, f"{node.name}()")

    def visit_ClassDef(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        if node.name in self._ENTRY_CLASSES:
            init = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                ctx.report(
                    self,
                    node,
                    f"{node.name} must define __init__ with a backend= parameter",
                )
            else:
                self._check_function(ctx, init, f"{node.name}.__init__")
        elif node.name in self._CONFIG_CLASSES:
            has_backend = any(
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "backend"
                for stmt in node.body
            )
            if not has_backend:
                ctx.report(
                    self,
                    node,
                    f"{node.name} must declare a `backend` field",
                )


class BackendDispatchRule(Rule):
    """R202: backend dispatch is literal-correct and exhaustive.

    Comparing a ``backend`` variable against anything outside
    ``{"auto", "dict", "csr"}`` is a typo that silently falls through.
    A multi-branch if/elif dispatch on backend literals must end in a
    plain ``else``, cover both concrete substrates, or raise.
    """

    id = "R202"
    name = "backend-dispatch"
    summary = "non-exhaustive or mistyped backend dispatch"
    scope = ("repro",)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._elif_members: set[int] = set()

    def _backend_literals(self, test: ast.AST) -> "list[str] | None":
        """Backend string literals compared in ``test``, or ``None``."""
        if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
            return None
        left, right = test.left, test.comparators[0]
        op = test.ops[0]
        if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
            return None
        for selector, other in ((left, right), (right, left)):
            if _is_backend_name(selector):
                return _string_literals(other)
        return None

    def visit_Compare(self, ctx: ModuleContext, node: ast.Compare) -> None:
        literals = self._backend_literals(node)
        if literals is None:
            return
        invalid = sorted(set(literals) - VALID_BACKENDS)
        if invalid:
            ctx.report(
                self,
                node,
                f"backend compared against invalid literal(s) "
                f"{', '.join(map(repr, invalid))}; valid values are "
                f"{'|'.join(sorted(VALID_BACKENDS))}",
            )

    def visit_If(self, ctx: ModuleContext, node: ast.If) -> None:
        if id(node) in self._elif_members:
            return
        chain: list[ast.If] = []
        current = node
        while True:
            chain.append(current)
            if len(current.orelse) == 1 and isinstance(current.orelse[0], ast.If):
                current = current.orelse[0]
                self._elif_members.add(id(current))
            else:
                break
        covered: set[str] = set()
        backend_branches = 0
        for branch in chain:
            literals = self._backend_literals(branch.test)
            if literals is not None:
                backend_branches += 1
                covered.update(literals)
        if backend_branches < 2:
            return  # a lone guard, not a dispatch chain
        has_else = bool(chain[-1].orelse)
        raises = any(
            isinstance(sub, ast.Raise)
            for branch in chain
            for stmt in branch.body
            for sub in ast.walk(stmt)
        )
        if not has_else and not {"dict", "csr"} <= covered and not raises:
            ctx.report(
                self,
                node,
                "backend dispatch chain is not exhaustive: add an else branch, "
                "cover both 'dict' and 'csr', or raise on unknown values",
            )


# ----------------------------------------------------------------------
# R3xx — API contracts
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    """R301: no mutable default arguments."""

    id = "R301"
    name = "mutable-default"
    summary = "mutable default argument (shared across calls)"
    scope = ("repro",)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return _call_name(node) in self._MUTABLE_CALLS

    def _check(
        self, ctx: ModuleContext, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and create inside the body",
                )

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        self._check(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._check(ctx, node)


class BareExceptRule(Rule):
    """R302: no bare ``except:`` (swallows KeyboardInterrupt/SystemExit)."""

    id = "R302"
    name = "bare-except"
    summary = "bare except: clause"
    scope = ("repro",)

    def visit_ExceptHandler(
        self, ctx: ModuleContext, node: ast.ExceptHandler
    ) -> None:
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare except: catches KeyboardInterrupt and SystemExit; "
                "name the exception class (at minimum `except Exception:`)",
            )


class SpanContextRule(Rule):
    """R303: obs spans are opened via ``with span(...)`` or ``@span(...)``.

    A bare ``span(...)`` call creates a span object that is never entered
    or closed — the timing silently records nothing and nests wrongly.
    """

    id = "R303"
    name = "span-context"
    summary = "span(...) used outside a with-statement or decorator"
    scope = ("repro",)

    _EXEMPT_PREFIX = "repro.obs"

    def applies_to(self, module: str) -> bool:
        if module == self._EXEMPT_PREFIX or module.startswith(
            self._EXEMPT_PREFIX + "."
        ):
            return False
        return super().applies_to(module)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._allowed: set[int] = set()

    @staticmethod
    def _is_span_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "span"
        if isinstance(func, ast.Attribute):
            return func.attr == "span"
        return False

    def _allow_decorators(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef",
    ) -> None:
        for decorator in node.decorator_list:
            self._allowed.add(id(decorator))

    def visit_With(self, ctx: ModuleContext, node: ast.With) -> None:
        for item in node.items:
            self._allowed.add(id(item.context_expr))

    def visit_AsyncWith(self, ctx: ModuleContext, node: ast.AsyncWith) -> None:
        for item in node.items:
            self._allowed.add(id(item.context_expr))

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        self._allow_decorators(node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._allow_decorators(node)

    def visit_ClassDef(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        self._allow_decorators(node)

    def visit_Call(self, ctx: ModuleContext, node: ast.Call) -> None:
        if self._is_span_call(node) and id(node) not in self._allowed:
            ctx.report(
                self,
                node,
                "span(...) must be opened as `with span(...):` or used as a "
                "@span(...) decorator; a bare call records nothing",
            )


class AnnotationCoverageRule(Rule):
    """R305: full annotation coverage in the strict-typed packages.

    This is the locally-enforceable face of the ``mypy --strict`` gate:
    mypy runs in CI (it is not vendored here), but missing annotations —
    the bulk of what strict mode rejects — are caught offline by this
    rule.
    """

    id = "R305"
    name = "annotation-coverage"
    summary = "missing parameter/return annotations in strict-typed packages"
    scope = (
        "repro.core",
        "repro.graph",
        "repro.analysis",
        "repro.utils",
        "repro.robust",
        "repro.obs.aggregate",
        "repro.obs.export",
        "repro.obs.bench",
        "repro.obs.report",
        "repro.obs.live",
    )

    def _check(
        self, ctx: ModuleContext, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        missing: list[str] = []
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        for star, prefix in ((args.vararg, "*"), (args.kwarg, "**")):
            if star is not None and star.annotation is None:
                missing.append(prefix + star.arg)
        parts: list[str] = []
        if missing:
            parts.append(f"unannotated parameter(s) {', '.join(missing)}")
        if node.returns is None:
            parts.append("missing return annotation")
        if parts:
            ctx.report(self, node, f"{node.name}(): {'; '.join(parts)}")

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        self._check(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._check(ctx, node)


# ----------------------------------------------------------------------
# R4xx — numeric hygiene
# ----------------------------------------------------------------------
class FloatEqualityRule(Rule):
    """R401: no ``==``/``!=`` against float-typed values.

    Influence values are ``exp(-θ·Δt)`` products (Eq. 4); comparing them
    with ``==`` breaks the moment accumulation order or backend changes.
    Use ``math.isclose`` or an explicit tolerance.
    """

    id = "R401"
    name = "float-equality"
    summary = "float equality comparison on influence-scale values"
    scope = ("repro.core", "repro.graph", "repro.analysis")

    _TRANSCENDENTAL = frozenset(
        {"exp", "expm1", "log", "log1p", "log2", "sqrt", "power"}
    )
    _MATH_MODULES = frozenset({"math", "np", "numpy"})
    _INFLUENCE_FUNCS = frozenset(
        {"link_influence", "normalized_influence", "unique_stamp_influences"}
    )

    def _is_float_valued(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._INFLUENCE_FUNCS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._TRANSCENDENTAL
                and isinstance(func.value, ast.Name)
                and func.value.id in self._MATH_MODULES
            ):
                return True
        return False

    def visit_Compare(self, ctx: ModuleContext, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq and any(self._is_float_valued(operand) for operand in operands):
            ctx.report(
                self,
                node,
                "float equality on an influence-scale value; use "
                "math.isclose(..., rel_tol=...) or an explicit tolerance",
            )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_META_CATALOG: tuple[tuple[str, str, str], ...] = (
    ("R001", "unknown-suppression", "suppression names a rule id that does not exist"),
    ("R002", "missing-reason", "suppression lacks the mandatory `-- reason`"),
    ("R003", "unused-suppression", "suppression matched no violation (stale)"),
)

_RULE_CLASSES: tuple[type[Rule], ...] = (
    SetIterationRule,
    BuiltinHashRule,
    UnseededRandomRule,
    BackendKwargRule,
    BackendDispatchRule,
    MutableDefaultRule,
    BareExceptRule,
    SpanContextRule,
    AnnotationCoverageRule,
    FloatEqualityRule,
)

ALL_RULE_IDS: tuple[str, ...] = tuple(
    [meta_id for meta_id, _, _ in _META_CATALOG]
    + [cls.id for cls in _RULE_CLASSES]
)


def default_rules(only: "Sequence[str] | None" = None) -> list[Rule]:
    """Fresh instances of the rule set.

    Args:
        only: restrict to these rule ids (unknown ids raise ValueError).
    """
    if only is not None:
        unknown = sorted(set(only) - set(ALL_RULE_IDS))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [
        cls()
        for cls in _RULE_CLASSES
        if only is None or cls.id in only
    ]


def rule_catalog() -> Iterator[tuple[str, str, str]]:
    """Yield ``(id, name, summary)`` for every rule, meta rules included."""
    yield from _META_CATALOG
    for cls in _RULE_CLASSES:
        yield (cls.id, cls.name, cls.summary)

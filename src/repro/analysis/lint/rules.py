"""The repro lint rule catalog.

Rule families (see ``docs/STATIC_ANALYSIS.md`` for the full catalog):

* **R0xx** meta — suppression hygiene, emitted by the engine itself.
* **R1xx** determinism — hash-order iteration, ``hash()``, unseeded RNG.
* **R2xx** backend parity — ``backend=`` plumbing and dispatch coverage,
  edge-checked against the pass-1 call graph.
* **R3xx** API contracts — mutable defaults, bare except, span usage,
  annotation coverage.
* **R4xx** numeric hygiene — float equality on influence-scale values.
* **R5xx** resource/concurrency safety — CFG-path resource lifecycle,
  pre-fork thread/lock discipline, worker global writes, arena escape.
* **R6xx** numpy hygiene — int32 index widening, stable sort/tie order,
  accumulation dtype mixing.

Every rule is deliberately heuristic: it inspects the AST, not types.
False negatives are acceptable (mypy and tests backstop them); false
positives are suppressable with a reasoned pragma.  The R5xx family and
the edge-checked R2xx variants consume the pass-1
:class:`~repro.analysis.lint.callgraph.ProjectIndex` delivered through
:meth:`~repro.analysis.lint.engine.Rule.begin_project`; without it
(``--no-project``) they degrade to their single-module approximations.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence

from repro.analysis.lint.callgraph import ProjectIndex, resolve_ref
from repro.analysis.lint.cfg import build_cfg, own_exprs
from repro.analysis.lint.dataflow import (
    bare_name_args,
    leaks_past,
    method_calls_on,
    returns_name,
    stores_into_attribute,
    uses_name,
)
from repro.analysis.lint.engine import ModuleContext, Rule

__all__ = [
    "default_rules",
    "relaxed_rules",
    "rule_catalog",
    "ALL_RULE_IDS",
    "RELAXED_RULE_IDS",
]


class _Loc:
    """Minimal location shim for reports not anchored to an AST node."""

    __slots__ = ("lineno", "col_offset")

    def __init__(self, lineno: int, col_offset: int = 0) -> None:
        self.lineno = lineno
        self.col_offset = col_offset

#: the only values a backend selector may take (R202).
VALID_BACKENDS = frozenset({"auto", "dict", "csr"})

_BACKEND_NAME_RE = re.compile(r"(^|_)backend$")


def _call_name(node: ast.AST) -> "str | None":
    """Plain name of a called function: ``sorted`` for ``sorted(...)``."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _is_backend_name(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return _BACKEND_NAME_RE.search(node.id) is not None
    if isinstance(node, ast.Attribute):
        return _BACKEND_NAME_RE.search(node.attr) is not None
    return False


def _string_literals(node: ast.AST) -> "list[str] | None":
    """String constants in a literal or literal collection, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [node.value]
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        out: list[str] = []
        for element in node.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            out.append(element.value)
        return out
    return None


# ----------------------------------------------------------------------
# R1xx — determinism
# ----------------------------------------------------------------------
class SetIterationRule(Rule):
    """R101: iteration over sets (or explicit ``.keys()``) must be sorted.

    Set iteration order follows hash order; for str-keyed sets it varies
    with ``PYTHONHASHSEED``, which is exactly the class of bug fixed at
    ``structure.py`` (Palette-WL group adjacency).  Any ``for``-loop or
    comprehension whose iterable is a set expression must wrap it in
    ``sorted(...)`` — or feed it to an order-insensitive consumer
    (``min``/``max``/``any``/``all``/``len``/``set``/``frozenset``).
    ``sum`` is *not* order-insensitive here: float addition order changes
    low bits, which the backend differential tests treat as a failure.
    """

    id = "R101"
    name = "set-iteration-order"
    summary = "iterating a set/dict.keys() without sorted() in core/graph"
    scope = ("repro.core", "repro.graph")

    _SET_FUNCS = frozenset({"set", "frozenset"})
    _SET_METHODS = frozenset(
        {"intersection", "union", "difference", "symmetric_difference"}
    )
    _SET_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)
    #: order-insensitive consumers: a set expression directly inside one
    #: of these calls needs no sorting.
    _SAFE_CONSUMERS = frozenset(
        {"sorted", "min", "max", "len", "any", "all", "set", "frozenset"}
    )
    #: order-preserving wrappers: unwrap these to find the real iterable.
    _PASSTHROUGH = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})

    def _set_expr(self, node: ast.AST, set_names: "dict[str, str]") -> "str | None":
        """Describe why ``node`` is a set-valued expression, or ``None``."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        name = _call_name(node)
        if name in self._SET_FUNCS:
            return f"a {name}(...) call"
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._SET_METHODS
        ):
            return f"a .{node.func.attr}(...) call"
        if isinstance(node, ast.Name) and node.id in set_names:
            return f"`{node.id}` ({set_names[node.id]})"
        if isinstance(node, ast.BinOp) and isinstance(node.op, self._SET_OPS):
            left = self._set_expr(node.left, set_names)
            right = self._set_expr(node.right, set_names)
            if left is not None or right is not None:
                return "a set operator expression"
        return None

    def _is_keys_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "keys"
            and not node.args
            and not node.keywords
        )

    def _check_iterable(
        self,
        ctx: ModuleContext,
        iterable: ast.AST,
        set_names: "dict[str, str]",
    ) -> None:
        target = iterable
        while (
            isinstance(target, ast.Call)
            and _call_name(target) in self._PASSTHROUGH
            and target.args
        ):
            target = target.args[0]
        if self._is_keys_call(target):
            ctx.report(
                self,
                iterable,
                "iterating .keys() directly; use sorted(...) (or iterate "
                "the mapping itself if insertion order is intentional)",
            )
            return
        description = self._set_expr(target, set_names)
        if description is not None:
            ctx.report(
                self,
                iterable,
                f"iterating {description} in hash order; wrap in sorted(...)",
            )

    @staticmethod
    def _annotation_is_set(annotation: "ast.expr | None") -> bool:
        """True when a parameter annotation names a set type."""
        if annotation is None:
            return False
        if isinstance(annotation, ast.Name):
            return annotation.id in ("set", "frozenset", "Set", "FrozenSet")
        if isinstance(annotation, ast.Subscript):
            return SetIterationRule._annotation_is_set(annotation.value)
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            head = annotation.value.split("[", 1)[0].strip()
            return head in ("set", "frozenset", "Set", "FrozenSet")
        return False

    def finish_module(self, ctx: ModuleContext) -> None:
        # Comprehensions fed straight into an order-insensitive consumer
        # (e.g. ``sorted(f(x) for x in node_set)``) are exempt.
        sanitized: set[int] = set()
        for node in ast.walk(ctx.tree):
            if _call_name(node) in self._SAFE_CONSUMERS:
                assert isinstance(node, ast.Call)
                for arg in node.args:
                    sanitized.add(id(arg))

        comprehensions = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        functions = (ast.FunctionDef, ast.AsyncFunctionDef)

        def walk(node: ast.AST, set_names: "dict[str, str]") -> None:
            if isinstance(node, functions):
                # Fresh scope: parameters shadow outer bindings; set-typed
                # annotations seed the tracker.
                inner = dict(set_names)
                arguments = node.args
                params = list(arguments.posonlyargs + arguments.args)
                params.extend(arguments.kwonlyargs)
                for param in params:
                    if self._annotation_is_set(param.annotation):
                        inner[param.arg] = "a set-typed parameter"
                    else:
                        inner.pop(param.arg, None)
                for star in (arguments.vararg, arguments.kwarg):
                    if star is not None:
                        inner.pop(star.arg, None)
                for child in ast.iter_child_nodes(node):
                    walk(child, inner)
                return
            if isinstance(node, ast.Lambda):
                inner = dict(set_names)
                for param in node.args.args:
                    inner.pop(param.arg, None)
                walk(node.body, inner)
                return
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    description = self._set_expr(node.value, set_names)
                    if description is not None:
                        set_names[target.id] = description
                    else:
                        set_names.pop(target.id, None)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    description = self._set_expr(node.value, set_names)
                    if description is not None:
                        set_names[node.target.id] = description
                    else:
                        set_names.pop(node.target.id, None)
            if isinstance(node, ast.For):
                self._check_iterable(ctx, node.iter, set_names)
            elif isinstance(node, comprehensions) and id(node) not in sanitized:
                for generator in node.generators:
                    self._check_iterable(ctx, generator.iter, set_names)
            for child in ast.iter_child_nodes(node):
                walk(child, set_names)

        walk(ctx.tree, {})


class BuiltinHashRule(Rule):
    """R102: no ``hash()`` in feature code.

    ``hash(str)`` is salted by ``PYTHONHASHSEED``; any feature or
    ordering derived from it differs between interpreter runs.  Use
    ``repro.graph.hashing`` digests or explicit sort keys instead.
    """

    id = "R102"
    name = "builtin-hash"
    summary = "hash() call in feature/graph code (PYTHONHASHSEED-salted)"
    scope = ("repro.core", "repro.graph", "repro.analysis")

    def visit_Call(self, ctx: ModuleContext, node: ast.Call) -> None:
        if _call_name(node) == "hash":
            ctx.report(
                self,
                node,
                "hash() is salted by PYTHONHASHSEED; use repro.graph.hashing "
                "digests or an explicit sort key",
            )


class UnseededRandomRule(Rule):
    """R103: all randomness flows through ``repro.utils.rng``.

    ``random.*`` and the legacy ``np.random.*`` module-level generators
    share hidden global state; experiments become unreproducible the
    moment two call sites interleave.  Accept an ``rng`` argument and
    normalise it with :func:`repro.utils.rng.ensure_rng`.
    """

    id = "R103"
    name = "unseeded-rng"
    summary = "random.* / np.random.* use outside repro.utils.rng"
    scope = ("repro",)

    _EXEMPT_MODULES = frozenset({"repro.utils.rng"})
    #: np.random attributes that are types, not stateful entry points.
    _ALLOWED_NP_ATTRS = frozenset({"Generator", "BitGenerator", "SeedSequence"})

    def applies_to(self, module: str) -> bool:
        return super().applies_to(module) and module not in self._EXEMPT_MODULES

    def visit_Import(self, ctx: ModuleContext, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("numpy.random"):
                ctx.report(
                    self,
                    node,
                    f"import of {alias.name!r}: route randomness through "
                    "repro.utils.rng (ensure_rng / spawn_rngs)",
                )

    def visit_ImportFrom(self, ctx: ModuleContext, node: ast.ImportFrom) -> None:
        if node.module == "random":
            ctx.report(
                self,
                node,
                "import from 'random': route randomness through repro.utils.rng",
            )
        elif node.module in ("numpy.random", "numpy"):
            flagged = [
                alias.name
                for alias in node.names
                if alias.name == "random" or (
                    node.module == "numpy.random"
                    and alias.name not in self._ALLOWED_NP_ATTRS
                )
            ]
            if flagged:
                ctx.report(
                    self,
                    node,
                    f"import of numpy.random name(s) {', '.join(flagged)}: "
                    "route randomness through repro.utils.rng",
                )

    def visit_Attribute(self, ctx: ModuleContext, node: ast.Attribute) -> None:
        value = node.value
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy")
            and value.attr == "random"
            and node.attr not in self._ALLOWED_NP_ATTRS
        ):
            ctx.report(
                self,
                node,
                f"np.random.{node.attr} uses module-level RNG state; take an "
                "rng argument and normalise via repro.utils.rng.ensure_rng",
            )


# ----------------------------------------------------------------------
# R2xx — backend parity
# ----------------------------------------------------------------------
class BackendKwargRule(Rule):
    """R201: public extraction entry points accept and forward ``backend=``.

    The dict and csr substrates are interchangeable by contract; an entry
    point that hardcodes one silently forks the pipeline.

    With the project index the rule is **edge-checked**: every call site
    of an extraction entry (or of a wrapper that forwards ``backend`` to
    one — the "one call hop" case) made from a function that itself has
    a ``backend`` parameter must pass ``backend=`` through, otherwise
    the caller's selector is silently dropped on the floor.
    """

    id = "R201"
    name = "backend-kwarg"
    summary = "extraction entry point missing/ignoring the backend parameter"
    scope = ("repro",)

    _ENTRY_FUNCTIONS = frozenset({"parallel_extract_batch", "batch_extract"})
    _ENTRY_CLASSES = frozenset({"SSFExtractor", "StreamingSSFPredictor"})
    _CONFIG_CLASSES = frozenset({"ExperimentConfig"})

    _project: "ProjectIndex | None" = None

    def begin_project(self, project: ProjectIndex) -> None:
        self._project = project
        entry_quals = {
            qualname
            for qualname, info in project.functions.items()
            if info.name in self._ENTRY_FUNCTIONS
        }
        # Forwarding wrappers: one call hop away from an entry, with a
        # backend parameter they pass through.  Their callers inherit
        # the forwarding obligation.
        wrappers = {
            qualname
            for qualname, info in project.functions.items()
            if info.has_backend_param
            and info.name not in self._ENTRY_FUNCTIONS
            and any(
                (call.resolved in entry_quals or call.tail in self._ENTRY_FUNCTIONS)
                and call.passes_backend
                for call in info.calls
            )
        }
        self._forward_targets = entry_quals | wrappers

    def finish_module(self, ctx: ModuleContext) -> None:
        if self._project is None:
            return
        for info in self._project.functions.values():
            if info.module != ctx.module or not info.has_backend_param:
                continue
            for call in info.calls:
                is_target = (
                    call.resolved in self._forward_targets
                    or call.tail in self._ENTRY_FUNCTIONS
                )
                if is_target and not call.passes_backend:
                    ctx.report(
                        self,
                        _Loc(call.line),
                        f"{info.name}() accepts backend= but calls "
                        f"{call.tail}() without forwarding it; the caller's "
                        "backend selection is dropped",
                        chain=f"{info.name}>{call.tail}",
                    )

    @staticmethod
    def _param_names(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
        args = node.args
        names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    @staticmethod
    def _forwards_backend(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Name) and sub.id == "backend":
                    if isinstance(sub.ctx, ast.Load):
                        return True
        return False

    def _check_function(
        self,
        ctx: ModuleContext,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        label: str,
    ) -> None:
        if "backend" not in self._param_names(node):
            ctx.report(
                self,
                node,
                f"{label} must accept a backend= parameter "
                f"({'|'.join(sorted(VALID_BACKENDS))})",
            )
        elif not self._forwards_backend(node):
            ctx.report(
                self,
                node,
                f"{label} accepts backend= but never reads it; forward it to "
                "the extraction substrate",
            )

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        if node.name in self._ENTRY_FUNCTIONS:
            self._check_function(ctx, node, f"{node.name}()")

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        if node.name in self._ENTRY_FUNCTIONS:
            self._check_function(ctx, node, f"{node.name}()")

    def visit_ClassDef(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        if node.name in self._ENTRY_CLASSES:
            init = next(
                (
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                ctx.report(
                    self,
                    node,
                    f"{node.name} must define __init__ with a backend= parameter",
                )
            else:
                self._check_function(ctx, init, f"{node.name}.__init__")
        elif node.name in self._CONFIG_CLASSES:
            has_backend = any(
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "backend"
                for stmt in node.body
            )
            if not has_backend:
                ctx.report(
                    self,
                    node,
                    f"{node.name} must declare a `backend` field",
                )


class BackendDispatchRule(Rule):
    """R202: backend dispatch is literal-correct and exhaustive.

    Comparing a ``backend`` variable against anything outside
    ``{"auto", "dict", "csr"}`` is a typo that silently falls through.
    A multi-branch if/elif dispatch on backend literals must end in a
    plain ``else``, cover both concrete substrates, or raise.  The
    edge-checked complement validates the *call-site* side of the same
    contract: any call passing a literal ``backend="..."`` must use a
    valid selector — a typo at one hop's distance is still a typo.
    """

    id = "R202"
    name = "backend-dispatch"
    summary = "non-exhaustive or mistyped backend dispatch"
    scope = ("repro",)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._elif_members: set[int] = set()

    def visit_Call(self, ctx: ModuleContext, node: ast.Call) -> None:
        for kw in node.keywords:
            if (
                kw.arg == "backend"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
                and kw.value.value not in VALID_BACKENDS
            ):
                ctx.report(
                    self,
                    node,
                    f"call passes invalid backend literal "
                    f"{kw.value.value!r}; valid values are "
                    f"{'|'.join(sorted(VALID_BACKENDS))}",
                )

    def _backend_literals(self, test: ast.AST) -> "list[str] | None":
        """Backend string literals compared in ``test``, or ``None``."""
        if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
            return None
        left, right = test.left, test.comparators[0]
        op = test.ops[0]
        if not isinstance(op, (ast.Eq, ast.NotEq, ast.In, ast.NotIn)):
            return None
        for selector, other in ((left, right), (right, left)):
            if _is_backend_name(selector):
                return _string_literals(other)
        return None

    def visit_Compare(self, ctx: ModuleContext, node: ast.Compare) -> None:
        literals = self._backend_literals(node)
        if literals is None:
            return
        invalid = sorted(set(literals) - VALID_BACKENDS)
        if invalid:
            ctx.report(
                self,
                node,
                f"backend compared against invalid literal(s) "
                f"{', '.join(map(repr, invalid))}; valid values are "
                f"{'|'.join(sorted(VALID_BACKENDS))}",
            )

    def visit_If(self, ctx: ModuleContext, node: ast.If) -> None:
        if id(node) in self._elif_members:
            return
        chain: list[ast.If] = []
        current = node
        while True:
            chain.append(current)
            if len(current.orelse) == 1 and isinstance(current.orelse[0], ast.If):
                current = current.orelse[0]
                self._elif_members.add(id(current))
            else:
                break
        covered: set[str] = set()
        backend_branches = 0
        for branch in chain:
            literals = self._backend_literals(branch.test)
            if literals is not None:
                backend_branches += 1
                covered.update(literals)
        if backend_branches < 2:
            return  # a lone guard, not a dispatch chain
        has_else = bool(chain[-1].orelse)
        raises = any(
            isinstance(sub, ast.Raise)
            for branch in chain
            for stmt in branch.body
            for sub in ast.walk(stmt)
        )
        if not has_else and not {"dict", "csr"} <= covered and not raises:
            ctx.report(
                self,
                node,
                "backend dispatch chain is not exhaustive: add an else branch, "
                "cover both 'dict' and 'csr', or raise on unknown values",
            )


# ----------------------------------------------------------------------
# R3xx — API contracts
# ----------------------------------------------------------------------
class MutableDefaultRule(Rule):
    """R301: no mutable default arguments."""

    id = "R301"
    name = "mutable-default"
    summary = "mutable default argument (shared across calls)"
    scope = ("repro",)

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray"})

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return _call_name(node) in self._MUTABLE_CALLS

    def _check(
        self, ctx: ModuleContext, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if self._is_mutable(default):
                ctx.report(
                    self,
                    default,
                    f"mutable default argument in {node.name}(); "
                    "default to None and create inside the body",
                )

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        self._check(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._check(ctx, node)


class BareExceptRule(Rule):
    """R302: no bare ``except:`` (swallows KeyboardInterrupt/SystemExit)."""

    id = "R302"
    name = "bare-except"
    summary = "bare except: clause"
    scope = ("repro",)

    def visit_ExceptHandler(
        self, ctx: ModuleContext, node: ast.ExceptHandler
    ) -> None:
        if node.type is None:
            ctx.report(
                self,
                node,
                "bare except: catches KeyboardInterrupt and SystemExit; "
                "name the exception class (at minimum `except Exception:`)",
            )


class SpanContextRule(Rule):
    """R303: obs spans are opened via ``with span(...)`` or ``@span(...)``.

    A bare ``span(...)`` call creates a span object that is never entered
    or closed — the timing silently records nothing and nests wrongly.
    """

    id = "R303"
    name = "span-context"
    summary = "span(...) used outside a with-statement or decorator"
    scope = ("repro",)

    _EXEMPT_PREFIX = "repro.obs"

    def applies_to(self, module: str) -> bool:
        if module == self._EXEMPT_PREFIX or module.startswith(
            self._EXEMPT_PREFIX + "."
        ):
            return False
        return super().applies_to(module)

    def begin_module(self, ctx: ModuleContext) -> None:
        self._allowed: set[int] = set()

    @staticmethod
    def _is_span_call(node: ast.AST) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if isinstance(func, ast.Name):
            return func.id == "span"
        if isinstance(func, ast.Attribute):
            return func.attr == "span"
        return False

    def _allow_decorators(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef",
    ) -> None:
        for decorator in node.decorator_list:
            self._allowed.add(id(decorator))

    def visit_With(self, ctx: ModuleContext, node: ast.With) -> None:
        for item in node.items:
            self._allowed.add(id(item.context_expr))

    def visit_AsyncWith(self, ctx: ModuleContext, node: ast.AsyncWith) -> None:
        for item in node.items:
            self._allowed.add(id(item.context_expr))

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        self._allow_decorators(node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._allow_decorators(node)

    def visit_ClassDef(self, ctx: ModuleContext, node: ast.ClassDef) -> None:
        self._allow_decorators(node)

    def visit_Call(self, ctx: ModuleContext, node: ast.Call) -> None:
        if self._is_span_call(node) and id(node) not in self._allowed:
            ctx.report(
                self,
                node,
                "span(...) must be opened as `with span(...):` or used as a "
                "@span(...) decorator; a bare call records nothing",
            )


class TraceContextKwargRule(Rule):
    """R304: serving entry points accept and forward ``rctx=``.

    Request-scoped trace context does not survive queue hand-offs or
    executor hops on its own (contextvars are task-local), so the
    serving entry functions — ``recommend``, ``recommend_many`` and
    ``ingest`` — carry it explicitly as an ``rctx`` keyword.  An entry
    point that drops the parameter silently severs every span below it
    from its request trace; one that accepts but never reads it does
    the same thing while looking wired up.
    """

    id = "R304"
    name = "trace-context-kwarg"
    summary = "serving entry point missing/ignoring the rctx parameter"
    scope = ("repro.serve",)

    _ENTRY_FUNCTIONS = frozenset({"recommend", "recommend_many", "ingest"})

    @staticmethod
    def _param_names(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> set[str]:
        args = node.args
        names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    @staticmethod
    def _reads_rctx(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Name)
                    and sub.id == "rctx"
                    and isinstance(sub.ctx, ast.Load)
                ):
                    return True
        return False

    def _check_function(
        self,
        ctx: ModuleContext,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
    ) -> None:
        if "rctx" not in self._param_names(node):
            ctx.report(
                self,
                node,
                f"{node.name}() must accept an rctx= trace-context parameter; "
                "contextvars do not cross the batching queue, so spans below "
                "this entry point lose their request trace",
            )
        elif not self._reads_rctx(node):
            ctx.report(
                self,
                node,
                f"{node.name}() accepts rctx= but never reads it; forward it "
                "into the spans/jobs this entry point creates",
            )

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        if node.name in self._ENTRY_FUNCTIONS:
            self._check_function(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        if node.name in self._ENTRY_FUNCTIONS:
            self._check_function(ctx, node)


class AnnotationCoverageRule(Rule):
    """R305: full annotation coverage in the strict-typed packages.

    This is the locally-enforceable face of the ``mypy --strict`` gate:
    mypy runs in CI (it is not vendored here), but missing annotations —
    the bulk of what strict mode rejects — are caught offline by this
    rule.
    """

    id = "R305"
    name = "annotation-coverage"
    summary = "missing parameter/return annotations in strict-typed packages"
    scope = (
        "repro.core",
        "repro.graph",
        "repro.analysis",
        "repro.utils",
        "repro.robust",
        "repro.obs.aggregate",
        "repro.obs.export",
        "repro.obs.bench",
        "repro.obs.report",
        "repro.obs.live",
        "repro.obs.rtrace",
        "repro.obs.slo",
        "repro.obs.contprof",
    )

    def _check(
        self, ctx: ModuleContext, node: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        args = node.args
        positional = args.posonlyargs + args.args
        missing: list[str] = []
        for index, arg in enumerate(positional):
            if index == 0 and arg.arg in ("self", "cls"):
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        missing.extend(
            arg.arg for arg in args.kwonlyargs if arg.annotation is None
        )
        for star, prefix in ((args.vararg, "*"), (args.kwarg, "**")):
            if star is not None and star.annotation is None:
                missing.append(prefix + star.arg)
        parts: list[str] = []
        if missing:
            parts.append(f"unannotated parameter(s) {', '.join(missing)}")
        if node.returns is None:
            parts.append("missing return annotation")
        if parts:
            ctx.report(self, node, f"{node.name}(): {'; '.join(parts)}")

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        self._check(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._check(ctx, node)


# ----------------------------------------------------------------------
# R4xx — numeric hygiene
# ----------------------------------------------------------------------
class FloatEqualityRule(Rule):
    """R401: no ``==``/``!=`` against float-typed values.

    Influence values are ``exp(-θ·Δt)`` products (Eq. 4); comparing them
    with ``==`` breaks the moment accumulation order or backend changes.
    Use ``math.isclose`` or an explicit tolerance.
    """

    id = "R401"
    name = "float-equality"
    summary = "float equality comparison on influence-scale values"
    scope = ("repro.core", "repro.graph", "repro.analysis")

    _TRANSCENDENTAL = frozenset(
        {"exp", "expm1", "log", "log1p", "log2", "sqrt", "power"}
    )
    _MATH_MODULES = frozenset({"math", "np", "numpy"})
    _INFLUENCE_FUNCS = frozenset(
        {"link_influence", "normalized_influence", "unique_stamp_influences"}
    )

    def _is_float_valued(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in self._INFLUENCE_FUNCS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._TRANSCENDENTAL
                and isinstance(func.value, ast.Name)
                and func.value.id in self._MATH_MODULES
            ):
                return True
        return False

    def visit_Compare(self, ctx: ModuleContext, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq and any(self._is_float_valued(operand) for operand in operands):
            ctx.report(
                self,
                node,
                "float equality on an influence-scale value; use "
                "math.isclose(..., rel_tol=...) or an explicit tolerance",
            )


# ----------------------------------------------------------------------
# R5xx — resource / concurrency safety (CFG + call-graph powered)
# ----------------------------------------------------------------------
class _Resource:
    """One tracked resource inside a function body."""

    __slots__ = ("var", "kind", "node_id", "stmt", "is_owner")

    def __init__(
        self, var: str, kind: str, node_id: int, stmt: ast.stmt, is_owner: bool
    ) -> None:
        self.var = var
        self.kind = kind
        self.node_id = node_id
        self.stmt = stmt
        self.is_owner = is_owner


class ResourceLifecycleRule(Rule):
    """R501: resources reach their release on every CFG path.

    Tracked resource kinds and their release/transfer vocabulary:

    * ``shm`` — ``SharedMemory(...)`` create or attach.  Release is
      ``.close()``/``.unlink()``; passing the bare object onward or
      storing it into an attribute transfers ownership.
    * ``handle`` — ``*.to_shared()`` snapshot handles.  Release is
      ``.unlink()``/``.close()``; only return/attribute-store transfers
      (handles are routinely passed by reference for attach).
    * ``fd`` — ``os.open(...)``.  Release is ``os.close(fd)``; passing
      the fd onward (e.g. ``os.fdopen``) transfers.
    * ``staging`` — atomic-replace temp paths (``with_suffix``/
      ``with_name``/``Path`` expressions naming ``tmp``).  The leak
      starts at the first write through the path (a partially written
      file survives an exception mid-write), and release is
      ``os.replace``/``os.rename``/``.unlink()``/``.rename()``/
      ``.replace()``.

    The query is MAY-reach over the function CFG including exception
    edges: if any path from the creation (or first write) reaches a
    normal or exceptional exit without hitting a release/transfer node,
    the resource leaks on that path.  A guard ``if`` whose test mentions
    the resource and whose body releases it absorbs paths too (the
    ``if handle is not None: handle.unlink()`` finally idiom).
    """

    id = "R501"
    name = "resource-lifecycle"
    summary = "SharedMemory/fd/staging file may leak on some CFG path"
    scope = ("repro",)

    _SHM_RELEASES = frozenset({"close", "unlink"})
    _HANDLE_RELEASES = frozenset({"unlink", "close"})
    _STAGING_RELEASES = frozenset({"unlink", "rename", "replace"})
    _STAGING_CTORS = frozenset({"with_suffix", "with_name", "joinpath", "Path"})

    def visit_FunctionDef(self, ctx: ModuleContext, node: ast.FunctionDef) -> None:
        self._analyze(ctx, node)

    def visit_AsyncFunctionDef(
        self, ctx: ModuleContext, node: ast.AsyncFunctionDef
    ) -> None:
        self._analyze(ctx, node)

    # -- resource discovery -------------------------------------------
    @staticmethod
    def _call_tail(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""

    @staticmethod
    def _has_tmp_constant(expr: ast.AST) -> bool:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                if "tmp" in sub.value:
                    return True
        return False

    def _classify(self, stmt: ast.stmt) -> "_Resource | None":
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return None
        target = stmt.targets[0]
        if not isinstance(target, ast.Name) or not isinstance(stmt.value, ast.Call):
            return None
        call = stmt.value
        tail = self._call_tail(call)
        if tail == "SharedMemory":
            is_owner = any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in call.keywords
            )
            return _Resource(target.id, "shm", -1, stmt, is_owner)
        if tail == "to_shared":
            return _Resource(target.id, "handle", -1, stmt, True)
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "open"
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id == "os"
        ):
            return _Resource(target.id, "fd", -1, stmt, True)
        if tail in self._STAGING_CTORS and self._has_tmp_constant(call):
            return _Resource(target.id, "staging", -1, stmt, True)
        return None

    # -- per-statement classification ---------------------------------
    def _releases(self, stmt: ast.stmt, resource: _Resource) -> bool:
        var = resource.var
        methods = method_calls_on(stmt, var)
        if resource.kind == "shm" and methods & self._SHM_RELEASES:
            return True
        if resource.kind == "handle" and methods & self._HANDLE_RELEASES:
            return True
        if resource.kind == "staging" and methods & self._STAGING_RELEASES:
            return True
        if resource.kind in ("fd", "staging"):
            # os.close(fd) / os.replace(tmp, dst) / os.rename(tmp, dst)
            wanted = {"close"} if resource.kind == "fd" else {"replace", "rename"}
            for expr in own_exprs(stmt):
                for sub in ast.walk(expr):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in wanted
                        and isinstance(sub.func.value, ast.Name)
                        and sub.func.value.id == "os"
                        and sub.args
                        and isinstance(sub.args[0], ast.Name)
                        and sub.args[0].id == var
                    ):
                        return True
        # `with resource:` closes on exit for context-managed kinds.
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == var:
                    return True
                if (
                    isinstance(expr, ast.Call)
                    and expr.args
                    and isinstance(expr.args[0], ast.Name)
                    and expr.args[0].id == var
                ):
                    return True
        return False

    def _escapes(self, stmt: ast.stmt, resource: _Resource) -> bool:
        var = resource.var
        if returns_name(stmt, var) or stores_into_attribute(stmt, var):
            return True
        if resource.kind == "shm" and bare_name_args(stmt, var):
            return True
        if resource.kind == "fd":
            # os.read/os.write/... operate on the descriptor without
            # taking ownership; only os.fdopen wraps-and-owns it.
            for call in bare_name_args(stmt, var):
                func = call.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"
                    and func.attr != "fdopen"
                ):
                    continue
                return True
        return False

    # -- the path query ------------------------------------------------
    def _analyze(
        self, ctx: ModuleContext, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> None:
        resources: list[_Resource] = []
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.Assign):
                resource = self._classify(stmt)
                if resource is not None:
                    resources.append(resource)
        if not resources:
            return
        cfg = build_cfg(fn)
        stmt_nodes = list(cfg.statement_nodes())
        node_by_stmt = {id(stmt): node_id for node_id, stmt in stmt_nodes}
        for resource in resources:
            node_id = node_by_stmt.get(id(resource.stmt))
            if node_id is None:
                continue  # creation inside a nested def; out of scope
            resource.node_id = node_id
            blockers: set[int] = set()
            for other_id, stmt in stmt_nodes:
                if other_id == node_id:
                    continue
                if self._releases(stmt, resource) or self._escapes(stmt, resource):
                    blockers.add(other_id)
                elif isinstance(stmt, ast.If) and uses_name(stmt, resource.var):
                    # guard-and-release idiom: the branch head absorbs
                    # when its subtree releases the resource.
                    guarded = ast.Module(body=stmt.body + stmt.orelse, type_ignores=[])
                    if any(
                        self._releases(inner, resource)
                        for inner in ast.walk(guarded)
                        if isinstance(inner, ast.stmt)
                    ):
                        blockers.add(other_id)
            if resource.kind == "staging":
                starts = [
                    other_id
                    for other_id, stmt in stmt_nodes
                    if other_id != node_id
                    and other_id not in blockers
                    and (
                        method_calls_on(stmt, resource.var)
                        or bare_name_args(stmt, resource.var)
                    )
                ]
                leaking = [
                    start
                    for start in starts
                    if leaks_past(
                        cfg, start, blockers, include_start_exceptions=True
                    )
                ]
                if leaking:
                    first = min(leaking)
                    stmt = dict(stmt_nodes)[first]
                    ctx.report(
                        self,
                        stmt,
                        f"staging file {resource.var!r} may be left behind: a "
                        "path from this write reaches function exit without "
                        "os.replace()/unlink(); wrap in try/finally like "
                        "repro.obs.live.atomic_write_text",
                    )
                continue
            if leaks_past(cfg, node_id, blockers):
                kind_label = {
                    "shm": "SharedMemory block",
                    "handle": "shared snapshot handle",
                    "fd": "file descriptor",
                }[resource.kind]
                release_hint = {
                    "shm": "close() (and unlink() for the creating owner)"
                    if resource.is_owner
                    else "close()",
                    "handle": "unlink()",
                    "fd": "os.close()",
                }[resource.kind]
                ctx.report(
                    self,
                    resource.stmt,
                    f"{kind_label} {resource.var!r} may leak: a path from its "
                    f"creation reaches function exit (incl. exception paths) "
                    f"without {release_hint} or an ownership transfer",
                )


class PreForkConcurrencyRule(Rule):
    """R502: no thread start / lock acquisition before a fork Pool spawn.

    ``fork`` clones only the calling thread; any *other* thread holding
    a lock at fork time leaves that lock permanently held in the child.
    The rule walks backwards from every pool-spawn point (direct, or
    through resolved callees up to two hops) and flags earlier thread
    starts and lock acquisitions — both in the spawning function itself
    and inside callees reached before the spawn.  Modules that install
    ``os.register_at_fork`` handlers (reinitialising their locks in the
    child) are exempt: that is precisely the sanctioned fix.
    """

    id = "R502"
    name = "pre-fork-concurrency"
    summary = "thread start/lock acquisition before a fork-method Pool spawn"
    scope = ("repro",)

    _project: "ProjectIndex | None" = None
    _SPAWN_HOPS = 2
    _LOCK_HOPS = 3

    def begin_project(self, project: ProjectIndex) -> None:
        self._project = project
        self._spawners = {
            qualname
            for qualname, info in project.functions.items()
            if info.spawns_pool
        }

    def _module_exempt(self, qualname: str) -> bool:
        assert self._project is not None
        module = self._project.module_of(qualname)
        return module is not None and module.registers_at_fork

    def finish_module(self, ctx: ModuleContext) -> None:
        project = self._project
        if project is None:
            return
        for info in project.functions.values():
            if info.module != ctx.module:
                continue
            spawn_lines = list(info.pool_lines)
            for call in info.calls:
                if call.resolved is None:
                    continue
                if call.resolved in self._spawners or any(
                    callee in self._spawners
                    for callee in project.callees(call.resolved, self._SPAWN_HOPS)
                ):
                    spawn_lines.append(call.line)
            if not spawn_lines:
                continue
            first_spawn = min(spawn_lines)
            own_exempt = self._module_exempt(info.qualname)
            for line in info.lock_lines:
                if line < first_spawn and not own_exempt:
                    ctx.report(
                        self,
                        _Loc(line),
                        f"{info.name}() acquires a lock before spawning a "
                        "fork-method Pool; a forked child can inherit it "
                        "held (add an os.register_at_fork handler or move "
                        "the acquisition after the spawn)",
                    )
            for line in info.thread_lines:
                if line < first_spawn and not own_exempt:
                    ctx.report(
                        self,
                        _Loc(line),
                        f"{info.name}() starts a thread before spawning a "
                        "fork-method Pool; threads hold locks across fork "
                        "(add an os.register_at_fork handler or start the "
                        "pool first)",
                    )
            reported_calls: set[int] = set()
            for call in info.calls:
                if call.resolved is None or call.line >= first_spawn:
                    continue
                if call.line in spawn_lines or call.line in reported_calls:
                    continue
                closure = {call.resolved} | set(
                    project.callees(call.resolved, self._LOCK_HOPS)
                )
                for callee in sorted(closure):
                    target = project.functions.get(callee)
                    if target is None:
                        continue
                    if not (target.lock_lines or target.thread_lines):
                        continue
                    if self._module_exempt(callee):
                        continue
                    chain = project.call_chain(
                        call.resolved, callee, self._LOCK_HOPS
                    )
                    names = [info.name] + [
                        project.functions[q].name
                        for q in (chain or [call.resolved, callee])
                        if q in project.functions
                    ]
                    hazard = "acquires a lock" if target.lock_lines else "starts a thread"
                    ctx.report(
                        self,
                        _Loc(call.line),
                        f"call before the Pool spawn at line {first_spawn} "
                        f"reaches {target.name}(), which {hazard} in module "
                        f"{target.module} (no os.register_at_fork handler); "
                        "a forked worker can deadlock on the inherited lock",
                        chain=">".join(dict.fromkeys(names)),
                    )
                    reported_calls.add(call.line)
                    break


class WorkerGlobalWriteRule(Rule):
    """R503: pool initializers/workers write only sanctioned globals.

    Rebinding a module-level global (``global X; X = ...``) inside a
    pool initializer or worker entry point creates per-process state the
    parent never sees — the exact bug class behind worker warm-up
    accounting.  The sanctioned exception is the observability reset
    set: every function transitively reachable from
    ``repro.obs.aggregate.apply_worker_obs_state`` (the documented
    worker-side reset), resolved from the call graph rather than
    name-matched.  The fix idiom is a module-level state *container*
    whose attributes are mutated instead of rebound.
    """

    id = "R503"
    name = "worker-global-write"
    summary = "pool initializer/worker rebinds unsanctioned module globals"
    scope = ("repro",)

    _project: "ProjectIndex | None" = None
    _ENTRY_HOPS = 4
    _SANCTION_ROOT = "apply_worker_obs_state"

    def begin_project(self, project: ProjectIndex) -> None:
        self._project = project
        sanction_seeds = [
            info.qualname
            for info in project.functions.values()
            if info.name == self._SANCTION_ROOT
        ]
        self._sanctioned = project.closure(sanction_seeds)
        self._offenders: dict[str, str] = {}
        entries: dict[str, str] = {}
        for module in project.modules.values():
            for ref, role in [
                (ref, "initializer") for ref in module.initializer_refs
            ] + [(ref, "worker") for ref in module.worker_entry_refs]:
                resolved = resolve_ref(project, module.name, ref)
                if resolved is not None:
                    entries[resolved] = role
        for entry, role in entries.items():
            closure = {entry} | set(project.callees(entry, self._ENTRY_HOPS))
            for qualname in closure:
                info = project.functions.get(qualname)
                if info is None or not info.global_writes:
                    continue
                if qualname in self._sanctioned:
                    continue
                self._offenders.setdefault(qualname, entry)

    def finish_module(self, ctx: ModuleContext) -> None:
        project = self._project
        if project is None:
            return
        for qualname, entry in sorted(self._offenders.items()):
            info = project.functions[qualname]
            if info.module != ctx.module:
                continue
            entry_info = project.functions.get(entry)
            entry_name = entry_info.name if entry_info else entry
            if qualname == entry:
                chain = entry_name
            else:
                path = project.call_chain(entry, qualname, self._ENTRY_HOPS)
                names = [
                    project.functions[q].name
                    for q in (path or [entry, qualname])
                    if q in project.functions
                ]
                chain = ">".join(dict.fromkeys(names))
            for global_name, line in info.global_writes:
                ctx.report(
                    self,
                    _Loc(line),
                    f"{info.name}() rebinds module global {global_name!r} on "
                    "the worker path; outside the sanctioned "
                    "repro.obs.aggregate reset set this is per-process "
                    "state the parent never sees — mutate a module-level "
                    "state container instead",
                    chain=chain,
                )


class ArenaEscapeRule(Rule):
    """R504: preallocated arena buffers never alias into return values.

    ``BatchArena``-style scratch buffers are reused across pairs inside
    one engine pass; a returned view of one would be silently clobbered
    by the next pass.  The rule tracks, per function, names aliasing an
    arena attribute's buffers (including subscript views) and flags any
    return/yield whose value still references one un-copied.
    """

    id = "R504"
    name = "arena-escape"
    summary = "arena/preallocated buffer aliased into a returned value"
    scope = ("repro",)

    _ALLOC_CALLS = frozenset({"empty", "zeros", "ones", "full", "arange"})
    _SANITIZERS = frozenset({"copy", "astype", "tolist", "array", "asarray"})

    def finish_module(self, ctx: ModuleContext) -> None:
        arena_classes: dict[str, set[str]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and node.name.endswith("Arena"):
                buffers: set[str] = set()
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Assign)
                        and len(sub.targets) == 1
                        and isinstance(sub.targets[0], ast.Attribute)
                        and isinstance(sub.targets[0].value, ast.Name)
                        and sub.targets[0].value.id == "self"
                        and isinstance(sub.value, ast.Call)
                        and isinstance(sub.value.func, ast.Attribute)
                        and sub.value.func.attr in self._ALLOC_CALLS
                    ):
                        buffers.add(sub.targets[0].attr)
                if buffers:
                    arena_classes[node.name] = buffers
        if not arena_classes:
            return
        holder_attrs: set[str] = set()
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and isinstance(node.value, ast.Call)
                and self._call_name_of(node.value) in arena_classes
            ):
                holder_attrs.add(node.targets[0].attr)
        all_buffers = set().union(*arena_classes.values())

        functions = (ast.FunctionDef, ast.AsyncFunctionDef)
        class_stack: list[str] = []

        def in_arena_class() -> bool:
            return bool(class_stack) and class_stack[-1] in arena_classes

        def walk(node: ast.AST) -> None:
            if isinstance(node, ast.ClassDef):
                class_stack.append(node.name)
                for child in ast.iter_child_nodes(node):
                    walk(child)
                class_stack.pop()
                return
            if isinstance(node, functions):
                if not in_arena_class():
                    self._check_function(ctx, node, holder_attrs, all_buffers)
                for child in ast.iter_child_nodes(node):
                    walk(child)
                return
            for child in ast.iter_child_nodes(node):
                walk(child)

        walk(ctx.tree)

    @staticmethod
    def _call_name_of(call: ast.Call) -> str:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return ""

    def _check_function(
        self,
        ctx: ModuleContext,
        fn: "ast.FunctionDef | ast.AsyncFunctionDef",
        holder_attrs: "set[str]",
        buffers: "set[str]",
    ) -> None:
        arena_names: set[str] = set()
        buffer_names: set[str] = set()

        def is_arena_expr(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in arena_names
            if isinstance(expr, ast.Attribute):
                return expr.attr in holder_attrs
            return False

        def is_buffer_expr(expr: ast.AST) -> bool:
            if isinstance(expr, ast.Name):
                return expr.id in buffer_names
            if isinstance(expr, ast.Attribute):
                return expr.attr in buffers and is_arena_expr(expr.value)
            if isinstance(expr, ast.Subscript):
                return is_buffer_expr(expr.value)
            return False

        def sanitized(expr: ast.AST) -> bool:
            return (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in self._SANITIZERS
            ) or (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.id in self._SANITIZERS
            )

        def scan_value(expr: ast.AST) -> "ast.AST | None":
            """First un-sanitized arena-buffer reference in ``expr``."""
            if sanitized(expr):
                return None
            if is_buffer_expr(expr):
                return expr
            for child in ast.iter_child_nodes(expr):
                hit = scan_value(child)
                if hit is not None:
                    return hit
            return None

        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    value = node.value
                    if is_arena_expr(value):
                        arena_names.add(target.id)
                    elif not sanitized(value) and is_buffer_expr(value):
                        buffer_names.add(target.id)
                    else:
                        arena_names.discard(target.id)
                        buffer_names.discard(target.id)
            candidate: "ast.AST | None" = None
            if isinstance(node, ast.Return) and node.value is not None:
                candidate = node.value
            elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value is not None:
                candidate = node.value
            if candidate is not None:
                hit = scan_value(candidate)
                if hit is not None:
                    ctx.report(
                        self,
                        node,
                        f"{fn.name}() returns a view of a preallocated arena "
                        "buffer; the next engine pass will clobber it — "
                        "return a .copy() or materialise into a fresh array",
                    )


# ----------------------------------------------------------------------
# R6xx — numpy hygiene
# ----------------------------------------------------------------------
class Int32WideningRule(Rule):
    """R601: int32 CSR index arithmetic widens before multiply/cumsum.

    CSR adjacency stores ``indices`` as int32 (half the shm footprint);
    key arithmetic like ``owner * n_nodes + neighbor`` overflows int32
    at SNAP scale unless the int32 operand is widened first.  Addition
    with an int64 operand promotes safely and is not flagged; multiply,
    power and cumulative reductions are where the overflow bites.
    """

    id = "R601"
    name = "int32-widening"
    summary = "int32 index arithmetic without widening before multiply/cumsum"
    scope = ("repro.core", "repro.graph")

    _INT32_TOKENS = frozenset({"int32"})
    _WIDE_TOKENS = frozenset({"int64", "uint64", "float64"})

    @staticmethod
    def _dtype_token(expr: ast.AST) -> "str | None":
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        return None

    def _dtype_of_call(self, call: ast.Call) -> "str | None":
        if isinstance(call.func, ast.Attribute) and call.func.attr == "astype":
            if call.args:
                return self._dtype_token(call.args[0])
        for kw in call.keywords:
            if kw.arg == "dtype":
                return self._dtype_token(kw.value)
        return None

    def _is_int32(self, expr: ast.AST, names: "set[str]") -> bool:
        if isinstance(expr, ast.Name):
            return expr.id in names
        if isinstance(expr, ast.Attribute):
            return expr.attr == "indices"
        if isinstance(expr, ast.Subscript):
            return self._is_int32(expr.value, names)
        if isinstance(expr, ast.Call):
            dtype = self._dtype_of_call(expr)
            return dtype in self._INT32_TOKENS
        return False

    def finish_module(self, ctx: ModuleContext) -> None:
        functions = (ast.FunctionDef, ast.AsyncFunctionDef)

        def walk(node: ast.AST, names: "set[str]") -> None:
            if isinstance(node, functions):
                inner: set[str] = set()
                for child in ast.iter_child_nodes(node):
                    walk(child, inner)
                return
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    value = node.value
                    if isinstance(value, ast.Call):
                        dtype = self._dtype_of_call(value)
                        if dtype in self._INT32_TOKENS:
                            names.add(target.id)
                        elif dtype in self._WIDE_TOKENS:
                            names.discard(target.id)
                        elif self._is_int32(value, names):
                            names.add(target.id)
                        else:
                            names.discard(target.id)
                    elif self._is_int32(value, names):
                        names.add(target.id)
                    else:
                        names.discard(target.id)
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Pow)
            ):
                for operand in (node.left, node.right):
                    if self._is_int32(operand, names):
                        ctx.report(
                            self,
                            node,
                            "multiply on an int32 index array can overflow "
                            "at SNAP scale; widen first with "
                            ".astype(np.int64)",
                        )
                        break
            if isinstance(node, ast.Call):
                func = node.func
                is_cumsum = (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("cumsum", "cumprod", "prod")
                )
                if is_cumsum:
                    assert isinstance(func, ast.Attribute)
                    target_expr: "ast.AST | None"
                    if isinstance(func.value, ast.Name) and func.value.id in (
                        "np",
                        "numpy",
                    ):
                        target_expr = node.args[0] if node.args else None
                    else:
                        target_expr = func.value
                    has_wide_dtype = any(
                        kw.arg == "dtype"
                        and self._dtype_token(kw.value) in self._WIDE_TOKENS
                        for kw in node.keywords
                    )
                    if (
                        target_expr is not None
                        and not has_wide_dtype
                        and self._is_int32(target_expr, names)
                    ):
                        ctx.report(
                            self,
                            node,
                            f"{func.attr} over an int32 index array "
                            "accumulates in int32 and can overflow; pass "
                            "dtype=np.int64 or widen first",
                        )
            for child in ast.iter_child_nodes(node):
                walk(child, names)

        walk(ctx.tree, set())


class StableSortRule(Rule):
    """R602: no reliance on unspecified sort tie order in feature code.

    ``np.argsort``/``np.sort`` default to introsort, whose tie order is
    unspecified and can differ across numpy versions and platforms —
    feature vectors built from positional pairings then stop being
    bit-identical.  Feature code must pass ``kind="stable"`` (or a
    documented pragma); ``np.lexsort`` is stable by definition and
    exempt.  ``np.unique(..., return_index=True)`` is tie-dependent the
    same way.
    """

    id = "R602"
    name = "stable-sort"
    summary = "np.sort/np.argsort/np.unique without stable tie order"
    scope = ("repro.core", "repro.graph")

    _STABLE_KINDS = frozenset({"stable", "mergesort"})

    def visit_Call(self, ctx: ModuleContext, node: ast.Call) -> None:
        func = node.func
        name: "str | None" = None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id in ("np", "numpy"):
                name = func.attr
            elif func.attr == "argsort":
                name = "argsort"
        if name not in ("sort", "argsort", "unique"):
            return
        if name == "unique":
            wants_index = any(
                kw.arg == "return_index"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if wants_index:
                ctx.report(
                    self,
                    node,
                    "np.unique(return_index=True) picks an unspecified index "
                    "among ties; sort stably first or document a pragma",
                )
            return
        kind = next(
            (
                kw.value.value
                for kw in node.keywords
                if kw.arg == "kind"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ),
            None,
        )
        if kind not in self._STABLE_KINDS:
            ctx.report(
                self,
                node,
                f"{name}() without kind=\"stable\": introsort tie order is "
                "unspecified and breaks bit-identical feature vectors",
            )


class AccumulationDtypeRule(Rule):
    """R603: no dtype mixing in loops accumulating influence sums.

    The Eq. 4/5 influence sums are float64 by contract (the backend
    differential compares them bit-for-bit).  A float32 accumulator —
    or float32 terms folded into a float64 accumulator — changes the
    rounding of every partial sum.
    """

    id = "R603"
    name = "accumulation-dtype-mix"
    summary = "mixed float dtypes in an accumulation loop"
    scope = ("repro.core", "repro.graph")

    _NARROW = frozenset({"float32", "float16"})
    _WIDE = frozenset({"float64"})

    @staticmethod
    def _dtype_token(expr: ast.AST) -> "str | None":
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value
        return None

    def _dtype_of(self, value: ast.AST) -> "str | None":
        if not isinstance(value, ast.Call):
            return None
        if isinstance(value.func, ast.Attribute) and value.func.attr == "astype":
            if value.args:
                return self._dtype_token(value.args[0])
        for kw in value.keywords:
            if kw.arg == "dtype":
                return self._dtype_token(kw.value)
        return None

    def finish_module(self, ctx: ModuleContext) -> None:
        functions = (ast.FunctionDef, ast.AsyncFunctionDef)
        loops = (ast.For, ast.AsyncFor, ast.While)

        def walk(node: ast.AST, narrow: "set[str]", wide: "set[str]", depth: int) -> None:
            if isinstance(node, functions):
                fn_narrow: set[str] = set()
                fn_wide: set[str] = set()
                for child in ast.iter_child_nodes(node):
                    walk(child, fn_narrow, fn_wide, 0)
                return
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    dtype = self._dtype_of(node.value)
                    if dtype in self._NARROW:
                        narrow.add(target.id)
                        wide.discard(target.id)
                    elif dtype in self._WIDE:
                        wide.add(target.id)
                        narrow.discard(target.id)
                    else:
                        narrow.discard(target.id)
                        wide.discard(target.id)
            if depth > 0 and isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                target = node.target
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if isinstance(base, ast.Name):
                    if base.id in narrow:
                        ctx.report(
                            self,
                            node,
                            f"accumulating into float32 array {base.id!r} "
                            "inside a loop; Eq. 4/5 influence sums are "
                            "float64 by contract — allocate the accumulator "
                            "as float64",
                        )
                    elif base.id in wide and any(
                        isinstance(sub, ast.Name) and sub.id in narrow
                        for sub in ast.walk(node.value)
                    ):
                        ctx.report(
                            self,
                            node,
                            "folding float32 terms into a float64 "
                            "accumulator mixes rounding modes across the "
                            "loop; widen the terms before the loop",
                        )
            next_depth = depth + 1 if isinstance(node, loops) else depth
            for child in ast.iter_child_nodes(node):
                walk(child, narrow, wide, next_depth)

        walk(ctx.tree, set(), set(), 0)


class RelaxedUnseededRandomRule(UnseededRandomRule):
    """R103 under the relaxed profile (scripts/benchmarks/tests).

    Test and bench code may *construct* seeded generators freely
    (``random.Random(0)``, ``np.random.default_rng(seed)``); what stays
    forbidden is the hidden module-level state — ``random.random()``,
    ``random.seed()``, ``np.random.rand()`` and friends.
    """

    _ALLOWED_NP_ATTRS = UnseededRandomRule._ALLOWED_NP_ATTRS | frozenset(
        {"default_rng"}
    )
    _ALLOWED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})

    def visit_Import(self, ctx: ModuleContext, node: ast.Import) -> None:
        pass  # importing the modules is fine; using global state is not

    def visit_ImportFrom(self, ctx: ModuleContext, node: ast.ImportFrom) -> None:
        pass

    def visit_Attribute(self, ctx: ModuleContext, node: ast.Attribute) -> None:
        super().visit_Attribute(ctx, node)
        value = node.value
        if (
            isinstance(value, ast.Name)
            and value.id == "random"
            and node.attr not in self._ALLOWED_RANDOM_ATTRS
        ):
            ctx.report(
                self,
                node,
                f"random.{node.attr} uses the shared module-level RNG; "
                "construct a seeded random.Random(seed) instead",
            )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_META_CATALOG: tuple[tuple[str, str, str], ...] = (
    ("R001", "unknown-suppression", "suppression names a rule id that does not exist"),
    ("R002", "missing-reason", "suppression lacks the mandatory `-- reason`"),
    ("R003", "unused-suppression", "suppression matched no violation (stale)"),
)

_RULE_CLASSES: tuple[type[Rule], ...] = (
    SetIterationRule,
    BuiltinHashRule,
    UnseededRandomRule,
    BackendKwargRule,
    BackendDispatchRule,
    MutableDefaultRule,
    BareExceptRule,
    SpanContextRule,
    TraceContextKwargRule,
    AnnotationCoverageRule,
    FloatEqualityRule,
    ResourceLifecycleRule,
    PreForkConcurrencyRule,
    WorkerGlobalWriteRule,
    ArenaEscapeRule,
    Int32WideningRule,
    StableSortRule,
    AccumulationDtypeRule,
)

# The relaxed profile for scripts/benchmarks/tests: style rules stay
# home, but hash-order determinism and the resource/concurrency family
# apply everywhere (a leaked shm block in a benchmark still poisons the
# host).  R103 is swapped for its relaxed variant, which tolerates
# explicitly seeded generator construction.
_RELAXED_RULE_CLASSES: tuple[type[Rule], ...] = (
    SetIterationRule,
    BuiltinHashRule,
    RelaxedUnseededRandomRule,
    ResourceLifecycleRule,
    PreForkConcurrencyRule,
    WorkerGlobalWriteRule,
    ArenaEscapeRule,
)

ALL_RULE_IDS: tuple[str, ...] = tuple(
    [meta_id for meta_id, _, _ in _META_CATALOG]
    + [cls.id for cls in _RULE_CLASSES]
)

RELAXED_RULE_IDS: tuple[str, ...] = tuple(
    cls.id for cls in _RELAXED_RULE_CLASSES
)


def default_rules(only: "Sequence[str] | None" = None) -> list[Rule]:
    """Fresh instances of the rule set.

    Args:
        only: restrict to these rule ids (unknown ids raise ValueError).
    """
    if only is not None:
        unknown = sorted(set(only) - set(ALL_RULE_IDS))
        if unknown:
            raise ValueError(f"unknown rule id(s): {', '.join(unknown)}")
    return [
        cls()
        for cls in _RULE_CLASSES
        if only is None or cls.id in only
    ]


def relaxed_rules() -> list[Rule]:
    """Fresh instances of the relaxed profile, scoped to match any module.

    Used for ``scripts/``, ``benchmarks/`` and ``tests/`` where module
    names do not live under the ``repro`` package; each instance's scope
    is widened to the ``("*",)`` sentinel so :meth:`Rule.applies_to`
    matches everything the caller feeds it.
    """
    rules: list[Rule] = []
    for cls in _RELAXED_RULE_CLASSES:
        rule = cls()
        rule.scope = ("*",)
        rules.append(rule)
    return rules


def rule_catalog() -> Iterator[tuple[str, str, str]]:
    """Yield ``(id, name, summary)`` for every rule, meta rules included."""
    yield from _META_CATALOG
    for cls in _RULE_CLASSES:
        yield (cls.id, cls.name, cls.summary)

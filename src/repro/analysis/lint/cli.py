"""Argument handling for the ``repro lint`` subcommand.

Kept separate from ``repro.cli`` so the linter is usable standalone::

    PYTHONPATH=src python -m repro.analysis.lint src/

Exit codes: 0 clean (or all violations baselined), 1 violations/stale
baseline, 2 usage error.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Sequence

from repro.analysis.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    compare_to_baseline,
)
from repro.analysis.lint.engine import LintReport, lint_paths
from repro.analysis.lint.rules import default_rules, rule_catalog

__all__ = ["add_lint_arguments", "build_parser", "execute_lint", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline file path (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and fail on every violation",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="strict CI mode: also fail on stale baseline entries (ratchet)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline file from the current violations",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="repo-specific determinism/contract linter for the SSF pipeline",
    )
    add_lint_arguments(parser)
    return parser


def _format_listing(report: LintReport, fmt: str) -> str:
    return report.format_json() if fmt == "json" else report.format_text()


def execute_lint(args: argparse.Namespace) -> tuple[str, int]:
    """Run the linter from parsed arguments; returns ``(text, exit_code)``."""
    if args.list_rules:
        lines = [f"{rid}  {name:<22} {summary}" for rid, name, summary in rule_catalog()]
        return "\n".join(lines), 0

    only = None
    if args.rules:
        only = tuple(part.strip() for part in args.rules.split(",") if part.strip())
    try:
        rules = default_rules(only)
    except ValueError as exc:
        return str(exc), 2

    try:
        report = lint_paths(args.paths, rules)
    except (FileNotFoundError, SyntaxError) as exc:
        return f"error: {exc}", 2

    if args.write_baseline:
        baseline = Baseline.from_violations(report.violations)
        baseline.dump(args.baseline)
        return (
            f"wrote {len(baseline.entries)} entrie(s) "
            f"({baseline.total()} violation(s)) to {args.baseline}",
            0,
        )

    baseline_path = Path(args.baseline)
    if args.no_baseline or not baseline_path.exists():
        listing = _format_listing(report, args.format)
        return listing, 1 if report.violations else 0

    baseline = Baseline.load(baseline_path)
    comparison = compare_to_baseline(report.violations, baseline)
    strict = bool(args.check_baseline)

    if args.format == "json":
        filtered = LintReport(
            violations=comparison.new, files_checked=report.files_checked
        )
        listing = filtered.format_json()
    else:
        lines = [violation.format() for violation in comparison.new]
        if strict:
            for entry in comparison.stale:
                lines.append(
                    f"{entry.path}: stale baseline entry for {entry.rule} "
                    f"({entry.snippet!r}); regenerate with --write-baseline"
                )
        lines.append(comparison.summary())
        listing = "\n".join(lines)
    return listing, 0 if comparison.ok(strict=strict) else 1


def run_lint(argv: "Sequence[str] | None" = None) -> tuple[str, int]:
    """Parse ``argv`` and run the linter; returns ``(text, exit_code)``."""
    return execute_lint(build_parser().parse_args(argv))


def main(argv: "Sequence[str] | None" = None) -> int:
    text, code = run_lint(argv)
    print(text)
    return code

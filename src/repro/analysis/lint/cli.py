"""Argument handling for the ``repro lint`` subcommand.

Kept separate from ``repro.cli`` so the linter is usable standalone::

    PYTHONPATH=src python -m repro.analysis.lint src/

Exit codes: 0 clean (or all violations baselined), 1 violations/stale
baseline, 2 usage error (including a corrupt or outdated baseline file).
"""

from __future__ import annotations

import argparse
import subprocess
import time
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    compare_to_baseline,
)
from repro.analysis.lint.engine import LintReport, lint_paths
from repro.analysis.lint.rules import default_rules, relaxed_rules, rule_catalog
from repro.analysis.lint.sarif import format_sarif

__all__ = ["add_lint_arguments", "build_parser", "execute_lint", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to ``parser`` (shared with ``repro lint``)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--sarif-out",
        metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH (any --format)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--relaxed",
        action="append",
        default=[],
        metavar="PATH",
        help="extra path linted with the relaxed profile (hash-order + "
        "R5xx families only); repeatable, e.g. --relaxed scripts "
        "--relaxed benchmarks --relaxed tests",
    )
    parser.add_argument(
        "--project",
        dest="project",
        action="store_true",
        default=True,
        help="two-pass mode: build the project symbol table + call graph "
        "first (default)",
    )
    parser.add_argument(
        "--no-project",
        dest="project",
        action="store_false",
        help="single-pass escape hatch: skip pass 1; project-aware rules "
        "degrade to local approximations",
    )
    parser.add_argument(
        "--project-cache",
        metavar="PATH",
        help="cache the pass-1 index at PATH, keyed by a source "
        "fingerprint (used by CI to stay inside the wall-clock budget)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="main",
        default=None,
        metavar="REF",
        help="lint only files changed relative to git REF (default: main); "
        "includes uncommitted changes",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"baseline file path (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report and fail on every violation",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="strict CI mode: also fail on stale baseline entries (ratchet)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline file from the current violations",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def build_parser(prog: str = "repro lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description="repo-specific determinism/contract linter for the SSF pipeline",
    )
    add_lint_arguments(parser)
    return parser


def _format_listing(report: LintReport, fmt: str) -> str:
    if fmt == "json":
        return report.format_json()
    if fmt == "sarif":
        return format_sarif(report, rule_catalog())
    return report.format_text()


def _changed_files(ref: str) -> "list[Path] | None":
    """Python files differing from ``ref`` (committed or not).

    Returns ``None`` when git itself fails (not a repo, unknown ref) so
    the caller can surface a usage error instead of linting nothing.
    """
    try:
        proc = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=d", ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return [
        Path(line)
        for line in proc.stdout.splitlines()
        if line.endswith(".py") and Path(line).exists()
    ]


def _under_any(path: Path, roots: Iterable[str]) -> bool:
    resolved = path.resolve()
    for root in roots:
        try:
            resolved.relative_to(Path(root).resolve())
            return True
        except ValueError:
            continue
    return False


def _record_obs(report: LintReport, duration: float) -> None:
    """Publish run counters through the repro.obs registry (ungated)."""
    from repro.obs.metrics import get_registry

    registry = get_registry()
    registry.counter("lint.files").inc(report.files_checked)
    registry.counter("lint.violations").inc(report.count())
    registry.histogram("lint.duration_seconds").observe(duration)


def execute_lint(args: argparse.Namespace) -> tuple[str, int]:
    """Run the linter from parsed arguments; returns ``(text, exit_code)``."""
    if args.list_rules:
        lines = [f"{rid}  {name:<22} {summary}" for rid, name, summary in rule_catalog()]
        return "\n".join(lines), 0

    only = None
    if args.rules:
        only = tuple(part.strip() for part in args.rules.split(",") if part.strip())
    try:
        rules = default_rules(only)
    except ValueError as exc:
        return str(exc), 2

    strict_paths: list = list(args.paths)
    relaxed_roots: list = list(args.relaxed)
    if args.changed is not None:
        changed = _changed_files(args.changed)
        if changed is None:
            return (
                f"error: could not compute git diff against {args.changed!r}; "
                "is this a git checkout and does the ref exist?",
                2,
            )
        strict_paths = [p for p in changed if _under_any(p, args.paths)]
        relaxed_roots = [p for p in changed if _under_any(p, args.relaxed)]
        if not strict_paths and not relaxed_roots:
            return f"no changed python files vs {args.changed}", 0

    started = time.monotonic()
    try:
        report = lint_paths(
            strict_paths,
            rules,
            project=args.project,
            relaxed_paths=relaxed_roots,
            relaxed_rules=relaxed_rules(),
            index_cache=args.project_cache,
        )
    except (FileNotFoundError, SyntaxError) as exc:
        return f"error: {exc}", 2
    _record_obs(report, time.monotonic() - started)

    if args.write_baseline:
        baseline = Baseline.from_violations(report.violations)
        baseline.dump(args.baseline)
        return (
            f"wrote {len(baseline.entries)} entrie(s) "
            f"({baseline.total()} violation(s)) to {args.baseline}",
            0,
        )

    baseline_path = Path(args.baseline)
    use_baseline = not args.no_baseline and baseline_path.exists()
    if use_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            return f"error: {exc}", 2
        comparison = compare_to_baseline(report.violations, baseline)
        effective = LintReport(
            violations=comparison.new, files_checked=report.files_checked
        )
    else:
        comparison = None
        effective = report

    if args.sarif_out:
        Path(args.sarif_out).write_text(
            format_sarif(effective, rule_catalog()) + "\n", encoding="utf-8"
        )

    if comparison is None:
        listing = _format_listing(report, args.format)
        return listing, 1 if report.violations else 0

    strict = bool(args.check_baseline)
    if args.format in ("json", "sarif"):
        listing = _format_listing(effective, args.format)
    else:
        lines = [violation.format() for violation in comparison.new]
        if strict:
            for entry in comparison.stale:
                lines.append(
                    f"{entry.path}: stale baseline entry for {entry.rule} "
                    f"({entry.snippet!r}); regenerate with --write-baseline"
                )
        lines.append(comparison.summary())
        listing = "\n".join(lines)
    return listing, 0 if comparison.ok(strict=strict) else 1


def run_lint(argv: "Sequence[str] | None" = None) -> tuple[str, int]:
    """Parse ``argv`` and run the linter; returns ``(text, exit_code)``."""
    return execute_lint(build_parser().parse_args(argv))


def main(argv: "Sequence[str] | None" = None) -> int:
    text, code = run_lint(argv)
    print(text)
    return code

"""Pass 1 of the project-aware linter: symbol table and call graph.

:func:`build_project_index` walks every module once and produces a
:class:`ProjectIndex` — functions and methods keyed by qualified name,
with per-function facts (parameters, ``backend=`` forwarding at each
call site, lock acquisitions, thread starts, ``global`` rebinds, pool
spawns) and resolved call edges.  Pass 2 rules consume the index via
:meth:`repro.analysis.lint.engine.Rule.begin_project`.

Call resolution is heuristic, in line with the linter's charter (false
negatives acceptable, no type inference):

* imports and ``from``-imports (including relative) build an alias map;
* bare names resolve within the module, then through aliases;
* ``self.m()`` / ``cls.m()`` resolve within the enclosing class;
* other attribute calls fall back to a *unique-suffix* match — resolved
  only when exactly one project function bears that terminal name.

The index is pure data (no AST references), so it serialises to JSON —
:meth:`ProjectIndex.to_payload` / :meth:`ProjectIndex.from_payload` back
the CI cache keyed by :func:`source_fingerprint`.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
from typing import Iterable, Mapping, Sequence

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectIndex",
    "build_project_index",
    "source_fingerprint",
]

#: pool-spawn call names (terminal attribute or bare name).
_POOL_SPAWNERS = frozenset({"Pool", "ProcessPoolExecutor"})

#: pool methods whose first argument is a worker entry point.
_WORKER_DISPATCH = frozenset(
    {"imap", "imap_unordered", "map_async", "apply_async", "starmap", "starmap_async"}
)

#: terminal names that look like a threading lock (heuristic).
def _is_lockish(name: str) -> bool:
    return "lock" in name.lower()


def _is_threadish(name: str) -> bool:
    return "thread" in name.lower()


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    raw: str  #: dotted callee text as written (``".m"`` for dynamic heads)
    resolved: "str | None"  #: qualified project function, when resolvable
    line: int
    keywords: tuple[str, ...]  #: keyword names; ``"**"`` for a double-star
    backend_literal: "str | None"  #: string constant passed as ``backend=``

    @property
    def tail(self) -> str:
        return self.raw.rsplit(".", 1)[-1]

    @property
    def passes_backend(self) -> bool:
        return "backend" in self.keywords or "**" in self.keywords


@dataclasses.dataclass
class FunctionInfo:
    """Facts about one function/method, resolvable without its AST."""

    qualname: str
    module: str
    name: str
    line: int
    params: tuple[str, ...]
    has_backend_param: bool
    calls: tuple[CallSite, ...]
    #: lines acquiring a lock (``with *lock*:`` or ``.acquire()``).
    lock_lines: tuple[int, ...]
    #: lines starting a thread.
    thread_lines: tuple[int, ...]
    #: ``(name, line)`` for module globals rebound via ``global``.
    global_writes: tuple[tuple[str, int], ...]
    #: lines spawning a process pool.
    pool_lines: tuple[int, ...]

    @property
    def spawns_pool(self) -> bool:
        return bool(self.pool_lines)


@dataclasses.dataclass
class ModuleInfo:
    """Per-module facts the rules need across files."""

    name: str
    path: str
    #: module calls ``os.register_at_fork`` (fork-safe lock discipline).
    registers_at_fork: bool
    #: raw refs passed as ``initializer=`` to a pool constructor.
    initializer_refs: tuple[str, ...]
    #: raw refs dispatched as pool worker entry points.
    worker_entry_refs: tuple[str, ...]


class ProjectIndex:
    """The symbol table + call graph shared by every pass-2 rule."""

    def __init__(
        self,
        modules: "dict[str, ModuleInfo]",
        functions: "dict[str, FunctionInfo]",
    ) -> None:
        self.modules = modules
        self.functions = functions
        self._by_name: dict[str, list[str]] = {}
        self._by_location: dict[tuple[str, int], str] = {}
        for qualname, info in functions.items():
            self._by_name.setdefault(info.name, []).append(qualname)
            self._by_location[(info.module, info.line)] = qualname

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def functions_named(self, name: str) -> "list[FunctionInfo]":
        return [self.functions[q] for q in self._by_name.get(name, ())]

    def function_at(self, module: str, line: int) -> "FunctionInfo | None":
        qualname = self._by_location.get((module, line))
        return self.functions.get(qualname) if qualname else None

    def module_of(self, qualname: str) -> "ModuleInfo | None":
        info = self.functions.get(qualname)
        return self.modules.get(info.module) if info else None

    def callees(self, qualname: str, depth: int = 3) -> "dict[str, int]":
        """Transitive resolved callees with their hop distance (BFS)."""
        out: dict[str, int] = {}
        frontier = [qualname]
        for hop in range(1, depth + 1):
            next_frontier: list[str] = []
            for current in frontier:
                info = self.functions.get(current)
                if info is None:
                    continue
                for call in info.calls:
                    if call.resolved and call.resolved not in out:
                        out[call.resolved] = hop
                        next_frontier.append(call.resolved)
            frontier = next_frontier
        out.pop(qualname, None)
        return out

    def closure(self, seeds: Iterable[str]) -> set[str]:
        """Seeds plus everything transitively reachable from them."""
        seen = set(seeds)
        frontier = list(seen)
        while frontier:
            current = frontier.pop()
            info = self.functions.get(current)
            if info is None:
                continue
            for call in info.calls:
                if call.resolved and call.resolved not in seen:
                    seen.add(call.resolved)
                    frontier.append(call.resolved)
        return seen

    def call_chain(self, start: str, target: str, depth: int = 3) -> "list[str]":
        """A shortest resolved call path ``start -> ... -> target``."""
        parent: dict[str, str] = {}
        frontier = [start]
        for _ in range(depth):
            next_frontier: list[str] = []
            for current in frontier:
                info = self.functions.get(current)
                if info is None:
                    continue
                for call in info.calls:
                    callee = call.resolved
                    if not callee or callee in parent or callee == start:
                        continue
                    parent[callee] = current
                    if callee == target:
                        chain = [target]
                        while chain[-1] != start:
                            chain.append(parent[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return []

    # ------------------------------------------------------------------
    # serialisation (backs the CI project-index cache)
    # ------------------------------------------------------------------
    def to_payload(self) -> "dict[str, object]":
        return {
            "modules": {
                name: dataclasses.asdict(info) for name, info in self.modules.items()
            },
            "functions": {
                qualname: dataclasses.asdict(info)
                for qualname, info in self.functions.items()
            },
        }

    @classmethod
    def from_payload(cls, payload: "Mapping[str, object]") -> "ProjectIndex":
        modules = {
            name: ModuleInfo(
                name=raw["name"],
                path=raw["path"],
                registers_at_fork=bool(raw["registers_at_fork"]),
                initializer_refs=tuple(raw["initializer_refs"]),
                worker_entry_refs=tuple(raw["worker_entry_refs"]),
            )
            for name, raw in payload["modules"].items()  # type: ignore[union-attr]
        }
        functions = {
            qualname: FunctionInfo(
                qualname=raw["qualname"],
                module=raw["module"],
                name=raw["name"],
                line=int(raw["line"]),
                params=tuple(raw["params"]),
                has_backend_param=bool(raw["has_backend_param"]),
                calls=tuple(
                    CallSite(
                        raw=call["raw"],
                        resolved=call["resolved"],
                        line=int(call["line"]),
                        keywords=tuple(call["keywords"]),
                        backend_literal=call["backend_literal"],
                    )
                    for call in raw["calls"]
                ),
                lock_lines=tuple(raw["lock_lines"]),
                thread_lines=tuple(raw["thread_lines"]),
                global_writes=tuple(
                    (name, int(line)) for name, line in raw["global_writes"]
                ),
                pool_lines=tuple(raw["pool_lines"]),
            )
            for qualname, raw in payload["functions"].items()  # type: ignore[union-attr]
        }
        return cls(modules=modules, functions=functions)


def source_fingerprint(files: "Sequence[tuple[str, str]]") -> str:
    """Hash of every ``(display_path, source)`` pair, order-insensitive."""
    digest = hashlib.sha256()
    for display, source in sorted(files):
        digest.update(display.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(hashlib.sha256(source.encode("utf-8")).digest())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _dotted(expr: ast.AST) -> "str | None":
    """Dotted text of a call target; ``".attr"`` when the head is dynamic."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        head = _dotted(expr.value)
        if head is None:
            return "." + expr.attr
        if head.startswith("."):
            # collapse a dynamic-head chain to its terminal attribute
            return "." + expr.attr
        return head + "." + expr.attr
    return None


@dataclasses.dataclass
class _RawCall:
    raw: str
    line: int
    keywords: tuple[str, ...]
    backend_literal: "str | None"


@dataclasses.dataclass
class _RawFunction:
    qualname: str
    module: str
    name: str
    class_name: "str | None"
    line: int
    params: tuple[str, ...]
    has_backend_param: bool
    calls: list[_RawCall]
    lock_lines: list[int]
    thread_lines: list[int]
    global_writes: list[tuple[str, int]]
    pool_lines: list[int]


def _import_aliases(module: str, tree: ast.Module) -> "dict[str, str]":
    aliases: dict[str, str] = {}
    package = module.rsplit(".", 1)[0] if "." in module else module
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".", 1)[0]
                target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                aliases[bound] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = module.split(".")
                base_parts = parts[: len(parts) - node.level]
                base = ".".join(base_parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            else:
                base = node.module or package
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                aliases[bound] = f"{base}.{alias.name}" if base else alias.name
    return aliases


def _function_params(node: "ast.FunctionDef | ast.AsyncFunctionDef") -> tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return tuple(names)


def _collect_function_facts(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef", raw: _RawFunction
) -> None:
    """Fill ``raw`` from ``fn``'s body, skipping nested def/class bodies."""
    global_names: set[str] = set()

    def visit(node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # indexed separately
        if isinstance(node, ast.Global):
            global_names.update(node.names)
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id in global_names:
                    raw.global_writes.append((target.id, node.lineno))
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                dotted = _dotted(item.context_expr)
                if isinstance(item.context_expr, ast.Call):
                    dotted = _dotted(item.context_expr.func)
                if dotted and _is_lockish(dotted.rsplit(".", 1)[-1]):
                    raw.lock_lines.append(node.lineno)
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None:
                tail = dotted.rsplit(".", 1)[-1]
                keywords = tuple(
                    kw.arg if kw.arg is not None else "**" for kw in node.keywords
                )
                backend_literal: "str | None" = None
                for kw in node.keywords:
                    if (
                        kw.arg == "backend"
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        backend_literal = kw.value.value
                raw.calls.append(
                    _RawCall(
                        raw=dotted,
                        line=node.lineno,
                        keywords=keywords,
                        backend_literal=backend_literal,
                    )
                )
                if tail == "acquire" and "." in dotted:
                    receiver = dotted.rsplit(".", 2)[-2]
                    if _is_lockish(receiver) or receiver in ("self",):
                        raw.lock_lines.append(node.lineno)
                if tail == "start" and "." in dotted:
                    receiver = dotted.rsplit(".", 2)[-2]
                    if _is_threadish(receiver):
                        raw.thread_lines.append(node.lineno)
                if tail in _POOL_SPAWNERS:
                    raw.pool_lines.append(node.lineno)
                if tail == "Thread":
                    raw.thread_lines.append(node.lineno)
        for child in ast.iter_child_nodes(node):
            visit(child)

    for stmt in fn.body:
        visit(stmt)


def _index_module(
    module: str, path: str, tree: ast.Module
) -> tuple[ModuleInfo, "list[_RawFunction]"]:
    raw_functions: list[_RawFunction] = []
    initializer_refs: list[str] = []
    worker_entry_refs: list[str] = []
    registers_at_fork = False

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            tail = dotted.rsplit(".", 1)[-1] if dotted else ""
            if tail == "register_at_fork":
                registers_at_fork = True
            if tail in _POOL_SPAWNERS:
                for kw in node.keywords:
                    if kw.arg == "initializer":
                        ref = _dotted(kw.value)
                        if ref:
                            initializer_refs.append(ref)
            if tail in _WORKER_DISPATCH and node.args:
                ref = _dotted(node.args[0])
                if ref:
                    worker_entry_refs.append(ref)

    def walk_defs(node: ast.AST, prefix: str, class_name: "str | None") -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                params = _function_params(child)
                raw = _RawFunction(
                    qualname=qualname,
                    module=module,
                    name=child.name,
                    class_name=class_name,
                    line=child.lineno,
                    params=params,
                    has_backend_param="backend" in params,
                    calls=[],
                    lock_lines=[],
                    thread_lines=[],
                    global_writes=[],
                    pool_lines=[],
                )
                _collect_function_facts(child, raw)
                raw_functions.append(raw)
                walk_defs(child, qualname, class_name)
            elif isinstance(child, ast.ClassDef):
                walk_defs(child, f"{prefix}.{child.name}", child.name)
            else:
                walk_defs(child, prefix, class_name)

    walk_defs(tree, module, None)
    info = ModuleInfo(
        name=module,
        path=path,
        registers_at_fork=registers_at_fork,
        initializer_refs=tuple(initializer_refs),
        worker_entry_refs=tuple(worker_entry_refs),
    )
    return info, raw_functions


def resolve_ref(
    index: "ProjectIndex",
    module: str,
    raw: str,
    *,
    class_name: "str | None" = None,
    aliases: "Mapping[str, str] | None" = None,
) -> "str | None":
    """Resolve a raw dotted reference to a project function qualname."""
    functions = index.functions
    if raw.startswith("."):
        tail = raw[1:]
        if class_name and f"{module}.{class_name}.{tail}" in functions:
            return f"{module}.{class_name}.{tail}"
        candidates = index.functions_named(tail)
        return candidates[0].qualname if len(candidates) == 1 else None
    head, _, rest = raw.partition(".")
    if not rest:
        if f"{module}.{raw}" in functions:
            return f"{module}.{raw}"
        if aliases and raw in aliases and aliases[raw] in functions:
            return aliases[raw]
        candidates = index.functions_named(raw)
        # A unique project-wide match resolves when the name is local or
        # was explicitly imported (covers package re-exports like
        # ``from repro.obs import heartbeat_tick``, whose alias target
        # names the package rather than the defining module).
        if len(candidates) == 1 and (
            candidates[0].module == module or (aliases and raw in aliases)
        ):
            return candidates[0].qualname
        return None
    if head in ("self", "cls") and class_name:
        if f"{module}.{class_name}.{rest}" in functions:
            return f"{module}.{class_name}.{rest}"
    if aliases and head in aliases:
        full = f"{aliases[head]}.{rest}"
        if full in functions:
            return full
    if f"{module}.{raw}" in functions:
        return f"{module}.{raw}"
    tail = raw.rsplit(".", 1)[-1]
    candidates = index.functions_named(tail)
    if len(candidates) == 1:
        return candidates[0].qualname
    return None


def build_project_index(
    modules: "Iterable[tuple[str, str, ast.Module]]",
) -> ProjectIndex:
    """Build the index from ``(module_name, path, tree)`` triples."""
    module_infos: dict[str, ModuleInfo] = {}
    raws: list[_RawFunction] = []
    alias_maps: dict[str, dict[str, str]] = {}
    for module, path, tree in modules:
        info, raw_functions = _index_module(module, path, tree)
        # Last writer wins on duplicate module names (e.g. two files both
        # outside any repro tree sharing a stem); per-module facts only.
        module_infos[module] = info
        raws.extend(raw_functions)
        alias_maps[module] = _import_aliases(module, tree)

    placeholder = ProjectIndex(
        modules=module_infos,
        functions={
            raw.qualname: FunctionInfo(
                qualname=raw.qualname,
                module=raw.module,
                name=raw.name,
                line=raw.line,
                params=raw.params,
                has_backend_param=raw.has_backend_param,
                calls=(),
                lock_lines=tuple(raw.lock_lines),
                thread_lines=tuple(raw.thread_lines),
                global_writes=tuple(raw.global_writes),
                pool_lines=tuple(raw.pool_lines),
            )
            for raw in raws
        },
    )

    functions: dict[str, FunctionInfo] = {}
    for raw in raws:
        aliases = alias_maps.get(raw.module, {})
        calls = tuple(
            CallSite(
                raw=call.raw,
                resolved=resolve_ref(
                    placeholder,
                    raw.module,
                    call.raw,
                    class_name=raw.class_name,
                    aliases=aliases,
                ),
                line=call.line,
                keywords=call.keywords,
                backend_literal=call.backend_literal,
            )
            for call in raw.calls
        )
        info = placeholder.functions[raw.qualname]
        functions[raw.qualname] = dataclasses.replace(info, calls=calls)
    return ProjectIndex(modules=module_infos, functions=functions)

"""Ratcheting violation baseline.

The baseline is a committed JSON file recording every known violation as
``(path, rule, snippet, chain, count)``.  Runs against it classify
violations:

* **new** — not in the baseline: always fails the run.  Fixing beats
  suppressing; suppressing requires a reasoned pragma.
* **known** — matched by the baseline: tolerated, to let the tooling land
  without a big-bang cleanup.
* **stale** — baseline entries no longer observed: under
  ``--check-baseline`` (the CI mode) these fail too, forcing the file to
  be regenerated smaller.  The baseline can only ratchet down.

Snippets (stripped source lines), not line numbers, identify entries so
unrelated edits do not churn the file.

Schema history: v2 (PR 8) added the ``chain`` component — the resolved
callee chain of project-pass findings — so two violations on the same
line that differ only in which call path triggered them stay distinct.
v1 files are rejected with a migration hint (``--write-baseline``
regenerates; an empty baseline needs no migration at all).
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Iterable

from repro.analysis.lint.engine import Violation

__all__ = [
    "Baseline",
    "BaselineComparison",
    "DEFAULT_BASELINE_NAME",
    "compare_to_baseline",
]

DEFAULT_BASELINE_NAME = "lint-baseline.json"

_VERSION = 2


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One tolerated violation site."""

    path: str
    rule: str
    snippet: str
    chain: str = ""
    count: int = 1

    def key(self) -> tuple[str, str, str, str]:
        return (self.path, self.rule, self.snippet, self.chain)


@dataclasses.dataclass
class Baseline:
    """The committed set of tolerated violations."""

    entries: list[BaselineEntry]

    @classmethod
    def from_violations(cls, violations: Iterable[Violation]) -> "Baseline":
        counts: dict[tuple[str, str, str, str], int] = {}
        for violation in violations:
            counts[violation.key()] = counts.get(violation.key(), 0) + 1
        entries = [
            BaselineEntry(
                path=path, rule=rule, snippet=snippet, chain=chain, count=count
            )
            for (path, rule, snippet, chain), count in counts.items()
        ]
        entries.sort(key=BaselineEntry.key)
        return cls(entries=entries)

    @classmethod
    def load(cls, path: "Path | str") -> "Baseline":
        """Load a baseline file.

        Raises:
            ValueError: unreadable/corrupt JSON, a non-mapping payload,
                a missing entry field, or an unsupported schema version
                — always with the offending path in the message, never a
                raw traceback bubbling out of ``json``.
        """
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"cannot read baseline file {path}: {exc}") from exc
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"baseline file {path} is not valid JSON ({exc}); "
                "regenerate it with --write-baseline"
            ) from exc
        if not isinstance(raw, dict):
            raise ValueError(
                f"baseline file {path} must contain a JSON object, "
                f"got {type(raw).__name__}"
            )
        version = raw.get("version")
        if version == 1:
            raise ValueError(
                f"baseline file {path} uses schema v1 (pre callee-chain "
                "keys); regenerate it with --write-baseline "
                "(see docs/STATIC_ANALYSIS.md, baseline migration)"
            )
        if version != _VERSION:
            raise ValueError(
                f"unsupported baseline version {version!r} in {path}"
            )
        try:
            entries = [
                BaselineEntry(
                    path=entry["path"],
                    rule=entry["rule"],
                    snippet=entry["snippet"],
                    chain=str(entry.get("chain", "")),
                    count=int(entry.get("count", 1)),
                )
                for entry in raw.get("entries", [])
            ]
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"baseline file {path} has a malformed entry ({exc!r}); "
                "regenerate it with --write-baseline"
            ) from exc
        entries.sort(key=BaselineEntry.key)
        return cls(entries=entries)

    def dump(self, path: "Path | str") -> None:
        payload = {
            "version": _VERSION,
            "entries": [dataclasses.asdict(entry) for entry in self.entries],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def total(self) -> int:
        return sum(entry.count for entry in self.entries)


@dataclasses.dataclass
class BaselineComparison:
    """Violations classified against a baseline."""

    new: list[Violation]
    known: list[Violation]
    stale: list[BaselineEntry]

    def ok(self, *, strict: bool) -> bool:
        """Pass/fail verdict; ``strict`` also fails on stale entries."""
        if self.new:
            return False
        return not (strict and self.stale)

    def summary(self) -> str:
        return (
            f"{len(self.new)} new, {len(self.known)} known (baselined), "
            f"{len(self.stale)} stale baseline entrie(s)"
        )


def compare_to_baseline(
    violations: Iterable[Violation], baseline: Baseline
) -> BaselineComparison:
    """Classify ``violations`` as new or known, and find stale entries.

    Matching is per-site with multiplicity: a baseline entry with
    ``count=2`` absorbs at most two identical violations; a third on the
    same line content is new.  An entry with *unused* allowance (fully or
    partially fixed) is stale — the ratchet demands regeneration.
    """
    budget = {entry.key(): entry.count for entry in baseline.entries}
    new: list[Violation] = []
    known: list[Violation] = []
    for violation in violations:
        remaining = budget.get(violation.key(), 0)
        if remaining > 0:
            budget[violation.key()] = remaining - 1
            known.append(violation)
        else:
            new.append(violation)
    stale = [
        entry
        for entry in baseline.entries
        if budget.get(entry.key(), 0) > 0
    ]
    return BaselineComparison(new=new, known=known, stale=stale)

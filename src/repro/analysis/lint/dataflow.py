"""Reaching-values path queries over the per-function CFG.

These are the small, targeted dataflow primitives behind the R5xx/R6xx
rule families — not a general framework.  The central query is
:func:`leaks_past` — "does some path from the resource creation
statement reach a function exit (normal or exceptional) without passing
through a release or an ownership transfer?" — which is exactly the
MAY-reach formulation of the resource-lifecycle rule (R501): release
and escape nodes absorb paths, so any remaining route to an exit is a
leak witness.

The expression-side helpers classify how a tracked variable name is
used inside one statement (release call, bare-name escape, attribute
store), using :func:`repro.analysis.lint.cfg.own_exprs` so nested
statements are never attributed to their enclosing compound.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.lint.cfg import CFG, EXIT, RAISE, own_exprs

__all__ = [
    "leaks_past",
    "reachable_from",
    "uses_name",
    "method_calls_on",
    "bare_name_args",
    "stores_into_attribute",
    "returns_name",
]


def reachable_from(
    cfg: CFG,
    start: int,
    *,
    blockers: "set[int] | frozenset[int]" = frozenset(),
    include_start_exceptions: bool = False,
) -> set[int]:
    """All nodes reachable from ``start`` without entering a blocker.

    Traversal begins at ``start``'s successors (the node itself is the
    origin, not part of the searched path) and follows both normal and
    exception edges; blocker nodes absorb — they are never expanded.
    ``include_start_exceptions`` adds ``start``'s own exception edges to
    the initial frontier (used for resources that exist even when the
    creating statement raises midway, e.g. a partially written staging
    file).
    """
    frontier = list(cfg.succ[start])
    if include_start_exceptions:
        frontier.extend(cfg.exc[start])
    seen: set[int] = set()
    while frontier:
        node = frontier.pop()
        if node in seen or node in blockers:
            continue
        seen.add(node)
        frontier.extend(cfg.succ[node])
        frontier.extend(cfg.exc[node])
    return seen


def leaks_past(
    cfg: CFG,
    start: int,
    releases: "set[int]",
    *,
    include_start_exceptions: bool = False,
) -> bool:
    """True when some path from ``start`` exits without a release.

    ``releases`` should contain every node that releases the resource
    *or* transfers its ownership; release operations are assumed to
    succeed (their own exception edges do not re-open the leak — the
    alternative has no fixpoint).
    """
    reached = reachable_from(
        cfg,
        start,
        blockers=releases,
        include_start_exceptions=include_start_exceptions,
    )
    return EXIT in reached or RAISE in reached


# ----------------------------------------------------------------------
# per-statement use classification
# ----------------------------------------------------------------------
def _walk_own(stmt: ast.stmt) -> Iterator[ast.AST]:
    for expr in own_exprs(stmt):
        yield from ast.walk(expr)


def uses_name(stmt: ast.stmt, name: str) -> bool:
    """True when the statement itself reads or writes ``name``."""
    return any(
        isinstance(sub, ast.Name) and sub.id == name for sub in _walk_own(stmt)
    )


def method_calls_on(stmt: ast.stmt, name: str) -> set[str]:
    """Method names invoked directly on the variable: ``name.close()``."""
    out: set[str] = set()
    for sub in _walk_own(stmt):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == name
        ):
            out.add(sub.func.attr)
    return out


def bare_name_args(stmt: ast.stmt, name: str) -> "list[ast.Call]":
    """Calls receiving the variable as a *bare* positional/keyword arg.

    Passing the bare name transfers the object to the callee (ownership
    escape); reading an attribute of it (``shm.buf``) does not.
    Container literals (``(shm,)``/``[shm]``) count — the reference
    still leaves the function's hands.
    """

    def contains_bare(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id == name
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return any(contains_bare(element) for element in expr.elts)
        if isinstance(expr, ast.Dict):
            return any(
                value is not None and contains_bare(value)
                for value in list(expr.keys) + list(expr.values)
            )
        if isinstance(expr, ast.Starred):
            return contains_bare(expr.value)
        return False

    out: list[ast.Call] = []
    for sub in _walk_own(stmt):
        if not isinstance(sub, ast.Call):
            continue
        if any(contains_bare(arg) for arg in sub.args) or any(
            contains_bare(kw.value) for kw in sub.keywords
        ):
            out.append(sub)
    return out


def stores_into_attribute(stmt: ast.stmt, name: str) -> bool:
    """True for ``obj.attr = name`` / ``obj[i] = name`` style transfers."""
    targets: "Iterable[ast.expr]" = ()
    value: "ast.expr | None" = None
    if isinstance(stmt, ast.Assign):
        targets, value = stmt.targets, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        targets, value = [stmt.target], stmt.value
    if value is None:
        return False
    stored = any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(value)
    )
    if not stored:
        return False
    return any(
        isinstance(target, (ast.Attribute, ast.Subscript)) for target in targets
    )


def returns_name(stmt: ast.stmt, name: str) -> bool:
    """True when the statement returns/yields an expression using ``name``."""
    candidates: "list[ast.expr | None]" = []
    if isinstance(stmt, ast.Return):
        candidates.append(stmt.value)
    elif isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, (ast.Yield, ast.YieldFrom)
    ):
        candidates.append(stmt.value)
    for candidate in candidates:
        if candidate is not None and any(
            isinstance(sub, ast.Name) and sub.id == name
            for sub in ast.walk(candidate)
        ):
            return True
    return False

"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests; uploading the file from the CI ``lint-and-types``
job turns every violation into an inline PR annotation.  Only the small
subset of the format the upload endpoint requires is emitted: one run,
one driver, the rule catalog as ``reportingDescriptor`` entries, and one
``result`` per violation with a physical location.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.analysis.lint.engine import LintReport

__all__ = ["format_sarif"]

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def format_sarif(
    report: LintReport, catalog: Iterable[tuple[str, str, str]]
) -> str:
    """Render ``report`` as a SARIF 2.1.0 document.

    Args:
        report: the lint outcome (already baseline-filtered when the
            caller runs in baseline mode — SARIF should annotate what
            fails the build, not what is tolerated).
        catalog: ``(id, name, summary)`` triples, normally
            :func:`repro.analysis.lint.rules.rule_catalog`.
    """
    rules = [
        {
            "id": rule_id,
            "name": name,
            "shortDescription": {"text": summary},
            "helpUri": "docs/STATIC_ANALYSIS.md",
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, name, summary in catalog
    ]
    rule_order = {entry["id"]: index for index, entry in enumerate(rules)}
    results = []
    for violation in report.violations:
        message = violation.message
        if violation.chain:
            message = f"{message} [via {violation.chain}]"
        result: dict[str, object] = {
            "ruleId": violation.rule,
            "level": "error",
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(violation.line, 1),
                            "startColumn": violation.column + 1,
                        },
                    }
                }
            ],
        }
        if violation.rule in rule_order:
            result["ruleIndex"] = rule_order[violation.rule]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)

"""Per-function control-flow graphs for the dataflow lint rules.

The CFG is statement-granular and deliberately conservative: every
statement that *may* raise gets an exception edge to the innermost
enclosing handler chain (or to the synthetic :data:`RAISE` exit), so a
path search can answer "can control leave this function between
statement A and statement B?" — the question behind the resource
lifecycle rule (R501).  Normal edges and exception edges are kept in
separate adjacency sets because a resource *creation* statement whose
own call raises never produced the resource, while any later statement
raising leaks it.

Precision notes (all over-approximations, never under):

* ``finally`` exits edge to both the normal successor and the
  exceptional exit — a MAY-reach query through a ``finally`` block can
  therefore take paths a real execution could not, which only produces
  false positives the rules accept by charter.
* ``break``/``continue`` jump straight to the loop boundary without
  routing through enclosing ``finally`` blocks.
* ``match`` statements are treated as an opaque branch over the cases.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Callable, Iterator, Sequence

__all__ = ["CFG", "ENTRY", "EXIT", "RAISE", "build_cfg", "own_exprs"]

#: synthetic node ids shared by every CFG.
ENTRY = 0
EXIT = 1
RAISE = 2

#: statement types that cannot raise at runtime (defining a function or
#: class *can* raise in exotic metaclass cases; close enough for lint).
_NON_RAISING = (
    ast.Pass,
    ast.Break,
    ast.Continue,
    ast.Global,
    ast.Nonlocal,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


@dataclasses.dataclass
class CFG:
    """Statement-level control-flow graph of one function body."""

    #: node id -> statement (``None`` for the synthetic entry/exit/raise
    #: nodes and for internal join points).
    nodes: list["ast.stmt | None"]
    #: normal control transfer edges.
    succ: list[set[int]]
    #: exception edges (taken only when the node's execution raises).
    exc: list[set[int]]

    def statement_nodes(self) -> Iterator[tuple[int, ast.stmt]]:
        """Yield ``(node_id, stmt)`` for every real statement node."""
        for index, stmt in enumerate(self.nodes):
            if stmt is not None:
                yield index, stmt

    def find_nodes(self, predicate: Callable[[ast.stmt], bool]) -> set[int]:
        """Node ids whose statement satisfies ``predicate``."""
        return {i for i, stmt in self.statement_nodes() if predicate(stmt)}


def own_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Expressions evaluated *by this statement itself*.

    Compound statements own only their header (test / iterable / context
    items); their bodies are separate CFG nodes.  Rules matching node
    content must use this instead of ``ast.walk(stmt)`` or a pattern in
    a nested statement would be attributed to its enclosing compound.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        yield stmt.test
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.target
        yield stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
            if item.optional_vars is not None:
                yield item.optional_vars
    elif isinstance(stmt, ast.Try):
        return
    elif isinstance(stmt, ast.Match):
        yield stmt.subject
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    else:
        yield stmt


class _Builder:
    def __init__(self) -> None:
        self.nodes: list["ast.stmt | None"] = [None, None, None]
        self.succ: list[set[int]] = [set(), set(), set()]
        self.exc: list[set[int]] = [set(), set(), set()]
        #: innermost-first stack of exception landing pads.
        self.exc_targets: list[tuple[int, ...]] = [(RAISE,)]
        #: entry nodes of enclosing ``finally`` blocks (innermost last).
        self.finally_entries: list[int] = []
        #: per-loop collected break exits (innermost last).
        self.break_exits: list[set[int]] = []
        #: per-loop head nodes for ``continue`` (innermost last).
        self.loop_heads: list[int] = []

    def new_node(self, stmt: "ast.stmt | None") -> int:
        self.nodes.append(stmt)
        self.succ.append(set())
        self.exc.append(set())
        return len(self.nodes) - 1

    def connect(self, sources: "set[int] | Sequence[int]", target: int) -> None:
        for source in sources:
            self.succ[source].add(target)

    def add_exception_edges(self, node: int) -> None:
        for target in self.exc_targets[-1]:
            self.exc[node].add(target)

    # ------------------------------------------------------------------
    def statements(self, body: Sequence[ast.stmt], frontier: set[int]) -> set[int]:
        """Wire ``body`` after ``frontier``; return the new frontier."""
        for stmt in body:
            frontier = self.statement(stmt, frontier)
        return frontier

    def statement(self, stmt: ast.stmt, frontier: set[int]) -> set[int]:
        if isinstance(stmt, (ast.If,)):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        return self._simple(stmt, frontier)

    def _simple(self, stmt: ast.stmt, frontier: set[int]) -> set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if not isinstance(stmt, _NON_RAISING):
            self.add_exception_edges(node)
        if isinstance(stmt, ast.Return):
            # A return routes through the innermost finally when one
            # encloses it, otherwise straight to EXIT.
            target = self.finally_entries[-1] if self.finally_entries else EXIT
            self.succ[node].add(target)
            return set()
        if isinstance(stmt, ast.Raise):
            # Exception edges above already point at the landing pads;
            # a raise has no normal successor.
            self.add_exception_edges(node)
            return set()
        if isinstance(stmt, ast.Break):
            if self.break_exits:
                self.break_exits[-1].add(node)
            return set()
        if isinstance(stmt, ast.Continue):
            if self.loop_heads:
                self.succ[node].add(self.loop_heads[-1])
            return set()
        return {node}

    def _if(self, stmt: ast.If, frontier: set[int]) -> set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        self.add_exception_edges(node)
        then_exits = self.statements(stmt.body, {node})
        if stmt.orelse:
            else_exits = self.statements(stmt.orelse, {node})
        else:
            else_exits = {node}
        return then_exits | else_exits

    def _loop(self, stmt: "ast.While | ast.For | ast.AsyncFor", frontier: set[int]) -> set[int]:
        head = self.new_node(stmt)
        self.connect(frontier, head)
        self.add_exception_edges(head)
        self.break_exits.append(set())
        self.loop_heads.append(head)
        body_exits = self.statements(stmt.body, {head})
        self.connect(body_exits, head)
        self.loop_heads.pop()
        breaks = self.break_exits.pop()
        if stmt.orelse:
            exits = self.statements(stmt.orelse, {head})
        else:
            exits = {head}
        return exits | breaks

    def _with(self, stmt: "ast.With | ast.AsyncWith", frontier: set[int]) -> set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        self.add_exception_edges(node)
        return self.statements(stmt.body, {node})

    def _match(self, stmt: ast.Match, frontier: set[int]) -> set[int]:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        self.add_exception_edges(node)
        exits: set[int] = {node}
        for case in stmt.cases:
            exits |= self.statements(case.body, {node})
        return exits

    def _try(self, stmt: ast.Try, frontier: set[int]) -> set[int]:
        outer_targets = self.exc_targets[-1]
        finally_entry: "int | None" = None
        finally_exits: set[int] = set()
        if stmt.finalbody:
            finally_entry = self.new_node(None)
            self.finally_entries.append(finally_entry)
            finally_exits = self.statements(stmt.finalbody, {finally_entry})
            self.finally_entries.pop()
            # Conservatively, a finally block both falls through and
            # re-raises (it may be on an exception path).
            for node in finally_exits:
                for target in outer_targets:
                    self.exc[node].add(target)

        handler_nodes: list[int] = []
        handler_exits: set[int] = set()
        after_finally = (finally_entry,) if finally_entry is not None else outer_targets
        for handler in stmt.handlers:
            node = self.new_node(handler)  # type: ignore[arg-type]
            handler_nodes.append(node)
            # No-match propagation / raise inside the match test.
            for target in after_finally:
                self.exc[node].add(target)
            self.exc_targets.append(after_finally)
            handler_exits |= self.statements(handler.body, {node})
            self.exc_targets.pop()

        if handler_nodes:
            body_targets: tuple[int, ...] = tuple(handler_nodes)
            if finally_entry is not None:
                body_targets = body_targets + (finally_entry,)
        else:
            body_targets = after_finally
        self.exc_targets.append(body_targets)
        body_exits = self.statements(stmt.body, frontier)
        self.exc_targets.pop()

        self.exc_targets.append(after_finally)
        else_exits = self.statements(stmt.orelse, body_exits) if stmt.orelse else body_exits
        self.exc_targets.pop()

        exits = else_exits | handler_exits
        if finally_entry is not None:
            self.connect(exits, finally_entry)
            return set(finally_exits)
        return exits


def build_cfg(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> CFG:
    """Build the CFG of ``fn``'s body (nested defs are opaque nodes)."""
    builder = _Builder()
    exits = builder.statements(fn.body, {ENTRY})
    builder.connect(exits, EXIT)
    return CFG(nodes=builder.nodes, succ=builder.succ, exc=builder.exc)

"""Repo-specific static analysis for the SSF reproduction.

Importable API::

    from repro.analysis.lint import default_rules, lint_source, lint_paths

    violations = lint_source(code, default_rules(), path="repro/core/x.py")

CLI: ``repro lint`` or ``python -m repro.analysis.lint``.
"""

from repro.analysis.lint.baseline import (
    Baseline,
    BaselineComparison,
    DEFAULT_BASELINE_NAME,
    compare_to_baseline,
)
from repro.analysis.lint.cli import (
    add_lint_arguments,
    build_parser,
    execute_lint,
    main,
    run_lint,
)
from repro.analysis.lint.callgraph import (
    ProjectIndex,
    build_project_index,
    source_fingerprint,
)
from repro.analysis.lint.engine import (
    LintReport,
    ModuleContext,
    Rule,
    Suppression,
    Violation,
    lint_paths,
    lint_source,
    module_name_for,
)
from repro.analysis.lint.rules import (
    ALL_RULE_IDS,
    RELAXED_RULE_IDS,
    default_rules,
    relaxed_rules,
    rule_catalog,
)
from repro.analysis.lint.sarif import format_sarif

__all__ = [
    "ALL_RULE_IDS",
    "Baseline",
    "BaselineComparison",
    "DEFAULT_BASELINE_NAME",
    "LintReport",
    "ModuleContext",
    "ProjectIndex",
    "RELAXED_RULE_IDS",
    "Rule",
    "Suppression",
    "Violation",
    "add_lint_arguments",
    "build_parser",
    "build_project_index",
    "compare_to_baseline",
    "execute_lint",
    "default_rules",
    "format_sarif",
    "lint_paths",
    "lint_source",
    "main",
    "module_name_for",
    "relaxed_rules",
    "rule_catalog",
    "run_lint",
    "source_fingerprint",
]

"""Network-analysis utilities: structural and temporal statistics."""

from repro.analysis.statistics import (
    NetworkReport,
    burstiness,
    clustering_coefficient,
    degree_distribution,
    degree_gini,
    inter_event_times,
    network_report,
    temporal_activity,
)

__all__ = [
    "degree_distribution",
    "degree_gini",
    "clustering_coefficient",
    "inter_event_times",
    "burstiness",
    "temporal_activity",
    "NetworkReport",
    "network_report",
]

"""Network-analysis utilities and repo-specific static analysis.

Two unrelated-but-cohabiting concerns:

* :mod:`repro.analysis.statistics` — structural/temporal statistics of
  dynamic networks (the ``repro stats`` report).
* :mod:`repro.analysis.lint` — the determinism/contract AST linter
  (the ``repro lint`` subcommand; see ``docs/STATIC_ANALYSIS.md``).
"""

from repro.analysis.lint import (
    Violation,
    add_lint_arguments,
    default_rules,
    execute_lint,
    lint_paths,
    lint_source,
)
from repro.analysis.statistics import (
    NetworkReport,
    burstiness,
    clustering_coefficient,
    degree_distribution,
    degree_gini,
    inter_event_times,
    network_report,
    temporal_activity,
)

__all__ = [
    "degree_distribution",
    "degree_gini",
    "clustering_coefficient",
    "inter_event_times",
    "burstiness",
    "temporal_activity",
    "NetworkReport",
    "network_report",
    "Violation",
    "add_lint_arguments",
    "default_rules",
    "execute_lint",
    "lint_paths",
    "lint_source",
]

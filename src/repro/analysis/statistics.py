"""Structural and temporal statistics of dynamic networks.

Companion analysis used to sanity-check the synthetic stand-ins against
the paper's dataset families (Table II): degree heterogeneity, clustering
(triadic closure), temporal burstiness and activity profiles.  All
statistics work directly on :class:`~repro.graph.temporal.DynamicNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.graph.temporal import DynamicNetwork, average_degree

Node = Hashable


def degree_distribution(network: DynamicNetwork, *, simple: bool = False) -> np.ndarray:
    """Sorted array of node degrees (multigraph by default).

    Args:
        simple: count distinct neighbours instead of link endpoints.
    """
    if simple:
        degrees = [network.simple_degree(n) for n in network.nodes]
    else:
        degrees = [network.degree(n) for n in network.nodes]
    return np.sort(np.array(degrees, dtype=np.int64))


def degree_gini(network: DynamicNetwork) -> float:
    """Gini coefficient of the degree distribution (0 = homogeneous,
    → 1 = extreme hubs); a scale-free reply network sits far above a
    contact network."""
    degrees = degree_distribution(network).astype(np.float64)
    if len(degrees) == 0 or degrees.sum() == 0:
        return 0.0
    n = len(degrees)
    ranks = np.arange(1, n + 1)
    return float((2 * ranks - n - 1) @ degrees / (n * degrees.sum()))


def clustering_coefficient(network: DynamicNetwork, max_nodes: "int | None" = None) -> float:
    """Mean local clustering coefficient of the static projection.

    Args:
        max_nodes: compute over the first ``max_nodes`` nodes only (the
            exact value is O(Σ deg²); capping keeps large graphs cheap).
    """
    graph = network.static_projection()
    nodes = graph.nodes
    if max_nodes is not None:
        nodes = nodes[:max_nodes]
    if not nodes:
        return 0.0
    total = 0.0
    for node in nodes:
        neighbours = list(graph.neighbor_view(node))
        k = len(neighbours)
        if k < 2:
            continue
        links = 0
        for i in range(k):
            row = graph.neighbor_view(neighbours[i])
            for j in range(i + 1, k):
                if neighbours[j] in row:
                    links += 1
        total += 2.0 * links / (k * (k - 1))
    return total / len(nodes)


def inter_event_times(network: DynamicNetwork) -> np.ndarray:
    """Per-pair gaps between consecutive link timestamps, pooled.

    Only pairs with at least two links contribute.  The distribution's
    shape distinguishes bursty interaction (heavy tail of short gaps)
    from uniform repetition.
    """
    gaps: list[float] = []
    for u, v in network.pair_iter():
        stamps = network.timestamps(u, v)
        if len(stamps) >= 2:
            gaps.extend(np.diff(stamps))
    return np.array(gaps, dtype=np.float64)


def burstiness(network: DynamicNetwork) -> float:
    """Goh–Barabási burstiness ``B = (σ - μ) / (σ + μ)`` of inter-event
    times: -1 = perfectly regular, 0 = Poisson, → 1 = extremely bursty.

    Returns 0 when fewer than two gaps exist.
    """
    gaps = inter_event_times(network)
    if len(gaps) < 2:
        return 0.0
    mean = gaps.mean()
    std = gaps.std()
    if std + mean == 0:
        return 0.0
    return float((std - mean) / (std + mean))


def temporal_activity(network: DynamicNetwork, bins: int = 20) -> np.ndarray:
    """Histogram of link counts over ``bins`` equal time slices."""
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    stamps = np.array([ts for _, _, ts in network.edges()])
    if len(stamps) == 0:
        return np.zeros(bins, dtype=np.int64)
    counts, _ = np.histogram(
        stamps, bins=bins, range=(stamps.min(), stamps.max() + 1e-9)
    )
    return counts.astype(np.int64)


@dataclass(frozen=True)
class NetworkReport:
    """Bundle of headline statistics for one dynamic network."""

    nodes: int
    links: int
    pairs: int
    avg_degree: float
    max_degree: int
    degree_gini: float
    clustering: float
    burstiness: float
    multiplicity_mean: float
    time_span: float

    def format(self, name: str = "network") -> str:
        """One text block, aligned for terminal display."""
        rows = (
            ("nodes", f"{self.nodes}"),
            ("links", f"{self.links}"),
            ("distinct pairs", f"{self.pairs}"),
            ("avg degree", f"{self.avg_degree:.2f}"),
            ("max degree", f"{self.max_degree}"),
            ("degree gini", f"{self.degree_gini:.3f}"),
            ("clustering", f"{self.clustering:.3f}"),
            ("burstiness", f"{self.burstiness:.3f}"),
            ("links per pair", f"{self.multiplicity_mean:.2f}"),
            ("time span", f"{self.time_span:.0f}"),
        )
        width = max(len(k) for k, _ in rows)
        lines = [f"=== {name} ==="]
        lines.extend(f"  {k:<{width}s}  {v}" for k, v in rows)
        return "\n".join(lines)


def network_report(
    network: DynamicNetwork, *, clustering_max_nodes: "int | None" = 500
) -> NetworkReport:
    """Compute a :class:`NetworkReport` for one network."""
    n_pairs = network.number_of_pairs()
    n_links = network.number_of_links()
    if n_links:
        span = network.last_timestamp() - network.first_timestamp() + 1
        max_deg = int(max(network.degree(n) for n in network.nodes))
    else:
        span = 0.0
        max_deg = 0
    return NetworkReport(
        nodes=network.number_of_nodes(),
        links=n_links,
        pairs=n_pairs,
        avg_degree=average_degree(network),
        max_degree=max_deg,
        degree_gini=degree_gini(network),
        clustering=clustering_coefficient(network, max_nodes=clustering_max_nodes),
        burstiness=burstiness(network),
        multiplicity_mean=(n_links / n_pairs) if n_pairs else 0.0,
        time_span=float(span),
    )

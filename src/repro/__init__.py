"""repro - Structure Subgraph Feature (SSF) link prediction.

A from-scratch reproduction of "A Universal Method Based on Structure
Subgraph Feature for Link Prediction over Dynamic Networks"
(Li, Liang, Zhang, Liu & Wu - ICDCS 2019).

Quickstart::

    from repro import DynamicNetwork, SSFExtractor, SSFConfig

    g = DynamicNetwork([("a", "c", 1), ("b", "c", 2), ("c", "d", 3)])
    feature = SSFExtractor(g, SSFConfig(k=10)).extract("a", "b")

High-level evaluation::

    from repro import LinkPredictionExperiment, ExperimentConfig
    from repro.datasets import get_dataset

    network = get_dataset("co-author").generate(seed=0)
    experiment = LinkPredictionExperiment(network, ExperimentConfig())
    print(experiment.run_method("SSFNM"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.feature import SSFConfig, SSFExtractor, ssf_feature_dim
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import LinkPredictionExperiment, run_dataset, run_table3
from repro.graph.static import StaticGraph
from repro.graph.temporal import DynamicNetwork, TemporalEdge
from repro.models.linear import LinearRegressionModel
from repro.models.neural import NeuralMachine
from repro.sampling.splits import LinkPredictionTask, build_link_prediction_task

__version__ = "1.0.0"

__all__ = [
    "DynamicNetwork",
    "TemporalEdge",
    "StaticGraph",
    "SSFConfig",
    "SSFExtractor",
    "ssf_feature_dim",
    "NeuralMachine",
    "LinearRegressionModel",
    "LinkPredictionTask",
    "build_link_prediction_task",
    "ExperimentConfig",
    "LinkPredictionExperiment",
    "run_dataset",
    "run_table3",
    "__version__",
]

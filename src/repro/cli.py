"""Command-line interface: ``python -m repro <command> ...``.

Every evaluation artefact of the paper is reachable from the terminal:

=============  ============================================================
command        regenerates
=============  ============================================================
``stats``      a structural/temporal report of one dataset (or file)
``table1``     Table I + the Fig. 1 feature comparison
``table2``     Table II dataset statistics
``table3``     Table III link-prediction results
``ksweep``     one Fig. 7 panel (AUC/F1 vs K)
``patterns``   one Fig. 6 panel (most frequent K-structure pattern)
``motivating`` the Fig. 1 celebrity/fan walkthrough
``crossval``   rolling-origin temporal cross-validation (extension)
``report``     a one-shot markdown dataset report, or — with ``--metrics``
               / ``--checkpoint`` / ``--bench`` — a run report joining
               observability artefacts (metrics, checkpoints, benchmarks)
``recommend``  top-N partner suggestions for one node (extension)
``stream``     prequential test-then-train streaming evaluation (extension)
``profile``    per-stage extraction timing/ratio profile (observability)
``bench``      extraction throughput benchmark + history + regression gate
``lint``       repo-specific determinism/contract static analysis
=============  ============================================================

Dataset selection: ``--dataset <name>`` for a synthetic catalog network
(use ``--scale`` to shrink it) or ``--file <path>`` for a timestamped
edge list (optionally ``--span`` to normalise the timestamps).

Observability: the global ``--log-level``/``--log-json`` flags control
diagnostic logging (stderr; command output stays on stdout).  On
experiment commands, ``--metrics-out PATH`` dumps the metrics-registry
snapshot (worker metrics included — pool workers ship theirs back at
chunk boundaries) and ``--trace-out PATH`` writes the recorded spans as
Chrome Trace Event JSON for Perfetto.  ``--telemetry-port PORT`` serves
live OpenMetrics exposition (plus ``/healthz``) while the command runs
(``--telemetry-linger SECONDS`` keeps it up after completion for
scrapers racing short runs), and ``--heartbeat PATH`` keeps an atomic
JSON progress file fresh for tailing.  ``repro report --metrics ...`` joins those artefacts into a
run report and ``repro bench --compare`` gates on throughput
regressions.  See docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro import obs
from repro.analysis import network_report
from repro.analysis.lint import add_lint_arguments, execute_lint
from repro.datasets.catalog import DATASETS, dataset_statistics, get_dataset
from repro.datasets.loaders import load_dataset_file
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import format_k_sweep, k_sweep, mine_frequent_pattern
from repro.experiments.methods import METHOD_ORDER
from repro.experiments.motivating import (
    format_motivating_table,
    motivating_comparison,
)
from repro.experiments.runner import LinkPredictionExperiment
from repro.experiments.tables import format_table1, format_table2, format_table3
from repro.graph.temporal import DynamicNetwork
from repro.sampling.temporal_cv import cross_validate_method


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSF link prediction over dynamic networks (ICDCS 2019 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        choices=obs.LEVELS,
        default="warning",
        help="diagnostic logging level (stderr; command output stays on stdout)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="emit diagnostics as JSON lines instead of human-readable text",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_dataset_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset", choices=sorted(DATASETS), help="catalog dataset name"
        )
        sub.add_argument("--file", help="timestamped edge-list file instead")
        sub.add_argument(
            "--span", type=int, help="normalise file timestamps onto 1..SPAN"
        )
        sub.add_argument(
            "--scale", type=float, default=1.0, help="dataset scale (0, 1]"
        )
        sub.add_argument("--seed", type=int, default=0, help="generation seed")

    def add_experiment_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--epochs", type=int, default=120)
        sub.add_argument("--k", type=int, default=10)
        sub.add_argument(
            "--max-positives",
            type=int,
            default=300,
            help="cap on positive pairs (0 = no cap, the faithful protocol)",
        )
        sub.add_argument(
            "--n-jobs",
            type=int,
            default=1,
            help="worker processes for SSF feature extraction",
        )
        add_metrics_out(sub)

    def add_metrics_out(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--metrics-out",
            metavar="PATH",
            help="write the metrics-registry snapshot to this JSON file",
        )
        sub.add_argument(
            "--trace-out",
            metavar="PATH",
            help="record completed spans (parent and pool workers) and "
            "write them as Chrome Trace Event JSON — open in Perfetto "
            "or chrome://tracing",
        )
        sub.add_argument(
            "--telemetry-port",
            type=int,
            metavar="PORT",
            help="serve live OpenMetrics exposition on 127.0.0.1:PORT "
            "(/metrics; /healthz returns run phase) for the duration "
            "of the command — 0 binds an ephemeral port",
        )
        sub.add_argument(
            "--heartbeat",
            metavar="PATH",
            help="continuously overwrite PATH (atomically) with a JSON "
            "progress heartbeat: run id, stage, done/total, pairs/sec, ETA",
        )
        sub.add_argument(
            "--telemetry-linger",
            type=float,
            default=0.0,
            metavar="SECONDS",
            help="keep the --telemetry-port endpoint serving this long "
            "after the command completes, so a scraper racing a short "
            "run (e.g. CI) still observes the final exposition",
        )
        sub.add_argument(
            "--continuous-profile",
            metavar="PATH",
            help="sample all threads at 101Hz of CPU time (setitimer/"
            "SIGPROF) for the whole command and write collapsed-stack "
            "flamegraph output to PATH (flamegraph.pl / speedscope)",
        )

    sub = commands.add_parser("stats", help="network statistics report")
    add_dataset_args(sub)

    commands.add_parser("table1", help="Table I feature comparison")

    sub = commands.add_parser("table2", help="Table II dataset statistics")
    sub.add_argument("--scale", type=float, default=1.0)
    sub.add_argument("--seed", type=int, default=0)

    sub = commands.add_parser("table3", help="Table III link prediction")
    add_dataset_args(sub)
    add_experiment_args(sub)
    sub.add_argument(
        "--methods",
        nargs="+",
        default=None,
        metavar="METHOD",
        help=f"subset of: {', '.join(METHOD_ORDER)} (plus LP/tCN/tRA/tPA)",
    )
    sub.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="persist per-(dataset, method) results there as the run "
        "progresses; re-running into the same directory skips completed "
        "cells (see docs/ROBUSTNESS.md)",
    )
    sub.add_argument(
        "--resume",
        metavar="DIR",
        help="resume a killed run from its checkpoint directory (the "
        "directory must exist; implies --checkpoint-dir DIR)",
    )

    sub = commands.add_parser("ksweep", help="Fig. 7 panel: AUC/F1 vs K")
    add_dataset_args(sub)
    add_experiment_args(sub)
    sub.add_argument("--method", default="SSFNM")
    sub.add_argument(
        "--ks", nargs="+", type=int, default=[5, 10, 15, 20], metavar="K"
    )

    sub = commands.add_parser("patterns", help="Fig. 6 panel: frequent pattern")
    add_dataset_args(sub)
    sub.add_argument("--samples", type=int, default=2000)
    sub.add_argument("--k", type=int, default=10)

    commands.add_parser("motivating", help="Fig. 1 walkthrough")

    sub = commands.add_parser("crossval", help="temporal cross-validation")
    add_dataset_args(sub)
    add_experiment_args(sub)
    sub.add_argument("--method", default="SSFNM")
    sub.add_argument("--folds", type=int, default=3)

    sub = commands.add_parser(
        "report",
        help="markdown report: dataset walkthrough, or (with --metrics/"
        "--checkpoint/--bench) a run report joining observability artefacts",
    )
    add_dataset_args(sub)
    add_experiment_args(sub)
    sub.add_argument("--output", help="write the report to this file")
    sub.add_argument(
        "--metrics",
        metavar="PATH",
        help="run-report mode: metrics snapshot JSON (from --metrics-out)",
    )
    sub.add_argument(
        "--checkpoint",
        metavar="DIR",
        help="run-report mode: checkpoint run directory to summarise",
    )
    sub.add_argument(
        "--bench",
        metavar="PATH",
        help="run-report mode: latest benchmark result JSON",
    )
    sub.add_argument(
        "--bench-history",
        metavar="PATH",
        help="run-report mode: BENCH_history.jsonl trajectory",
    )
    sub.add_argument(
        "--profile",
        metavar="PATH",
        help="run-report mode: collapsed-stack profile (from "
        "--continuous-profile) to render as a top-frames table",
    )
    sub.add_argument(
        "--json-out",
        metavar="PATH",
        help="run-report mode: also write the report as JSON there",
    )

    sub = commands.add_parser(
        "recommend", help="top-N partner suggestions for one node"
    )
    add_dataset_args(sub)
    sub.add_argument("--user", required=True, help="node to recommend for")
    sub.add_argument("--top", type=int, default=10)
    sub.add_argument("--k", type=int, default=10)
    sub.add_argument(
        "--model", choices=("linear", "neural"), default="linear"
    )

    sub = commands.add_parser(
        "stream", help="prequential (test-then-train) streaming evaluation"
    )
    add_dataset_args(sub)
    sub.add_argument("--k", type=int, default=10)
    sub.add_argument("--model", choices=("linear", "neural"), default="linear")
    sub.add_argument("--warmup", type=float, default=0.5)
    sub.add_argument("--refit-every", type=int, default=2)
    sub.add_argument(
        "--drift-threshold",
        type=float,
        default=0.2,
        metavar="DELTA",
        help="emit a structured auc_drift alert when a window's AUC falls "
        "more than DELTA below the running mean (<= 0 disables, "
        "default 0.2)",
    )
    add_metrics_out(sub)

    sub = commands.add_parser(
        "profile",
        help="per-stage extraction timing/ratio profile (observability)",
    )
    add_dataset_args(sub)
    sub.add_argument("--k", type=int, default=10)
    sub.add_argument(
        "--pairs", type=int, default=100, help="number of target links profiled"
    )
    sub.add_argument(
        "--mode",
        choices=("temporal", "influence", "count", "binary", "distance",
                 "influence_distance"),
        default="temporal",
        help="SSF entry mode to profile",
    )
    add_metrics_out(sub)

    sub = commands.add_parser(
        "bench",
        help="extraction throughput benchmark + history + regression gate",
    )
    sub.add_argument("--nodes", type=int, default=800)
    sub.add_argument("--pairs", type=int, default=60)
    sub.add_argument("--k", type=int, default=10)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--out", metavar="PATH", help="write the latest result JSON there"
    )
    sub.add_argument(
        "--history",
        metavar="PATH",
        help="append a stamped record (seed, git SHA, machine fingerprint) "
        "to this JSONL trajectory",
    )
    sub.add_argument(
        "--current",
        metavar="PATH",
        help="compare this existing result instead of running the benchmark",
    )
    sub.add_argument(
        "--compare",
        metavar="BASELINE",
        help="diff against this baseline result/record JSON; exit non-zero "
        "when any backend's pairs/sec regressed beyond --max-regression",
    )
    sub.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="tolerated pairs/sec drop as a fraction of baseline (noise "
        "threshold, default 0.30)",
    )
    sub.add_argument(
        "--tag",
        metavar="LABEL",
        help="label this run in the result and its history record, so "
        "distinct experiment lines (e.g. serving-layer benches) can be "
        "told apart in the same BENCH_history.jsonl",
    )
    sub.add_argument(
        "--batch",
        action="store_true",
        help="also time the csr batched driver (extract_batch) as a "
        "'batched' backend section",
    )
    sub.add_argument(
        "--batch-pairs",
        type=int,
        default=None,
        metavar="N",
        help="pair count for the --batch section (default 10x --pairs)",
    )
    add_metrics_out(sub)

    sub = commands.add_parser(
        "serve",
        help="online serving layer: replay a stream through the async "
        "recommender front-end (see docs/SERVING.md)",
    )
    add_dataset_args(sub)
    sub.add_argument(
        "--replay",
        action="store_true",
        help="hold out the network's tail as live edge events and replay "
        "them while serving recommendation requests",
    )
    sub.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help="serve over a synthetic N-node network instead of "
        "--dataset/--file",
    )
    sub.add_argument("--queries", type=int, default=2000)
    sub.add_argument(
        "--concurrency",
        type=int,
        default=64,
        help="in-flight request window during the replay",
    )
    sub.add_argument("--top", type=int, default=5, help="suggestions per request")
    sub.add_argument("--k", type=int, default=10)
    sub.add_argument("--model", choices=("linear", "neural"), default="linear")
    sub.add_argument(
        "--hot-users",
        type=int,
        default=32,
        help="size of the head-heavy query pool",
    )
    sub.add_argument(
        "--event-fraction",
        type=float,
        default=0.2,
        help="fraction of distinct timestamps held out as the live stream",
    )
    sub.add_argument(
        "--max-events",
        type=int,
        default=200,
        help="cap on replayed tail events",
    )
    sub.add_argument(
        "--events-per-batch",
        type=int,
        default=8,
        help="edge events per ingest batch",
    )
    sub.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-attempt request deadline (default: the robustness "
        "layer's RetryPolicy, REPRO_CHUNK_TIMEOUT et al.)",
    )
    sub.add_argument(
        "--out", metavar="PATH", help="write the replay result JSON there"
    )
    sub.add_argument(
        "--history",
        metavar="PATH",
        help="append a stamped 'serving'-tagged record to this JSONL "
        "trajectory (same schema as `repro bench --history`)",
    )
    add_metrics_out(sub)

    sub = commands.add_parser(
        "lint", help="determinism/contract static analysis (see docs/STATIC_ANALYSIS.md)"
    )
    add_lint_arguments(sub)

    return parser


_LOG = obs.get_logger("cli")


def _load_network(args: argparse.Namespace) -> tuple[str, DynamicNetwork]:
    if getattr(args, "file", None):
        network = load_dataset_file(args.file, span=args.span)
        _LOG.info(
            "loaded %s: %d nodes, %d links",
            args.file,
            network.number_of_nodes(),
            network.number_of_links(),
        )
        return args.file, network
    name = getattr(args, "dataset", None)
    if not name:
        raise SystemExit("error: provide --dataset or --file")
    network = get_dataset(name).generate(seed=args.seed, scale=args.scale)
    _LOG.info(
        "generated %s (scale=%g, seed=%d): %d nodes, %d links",
        name,
        args.scale,
        args.seed,
        network.number_of_nodes(),
        network.number_of_links(),
    )
    return name, network


def _config(args: argparse.Namespace) -> ExperimentConfig:
    max_positives = args.max_positives if args.max_positives > 0 else None
    return ExperimentConfig(
        k=args.k,
        epochs=args.epochs,
        max_positives=max_positives,
        n_jobs=getattr(args, "n_jobs", 1),
    )


def _cmd_stats(args: argparse.Namespace) -> str:
    name, network = _load_network(args)
    return network_report(network).format(name)


def _cmd_table1(args: argparse.Namespace) -> str:
    comparison = motivating_comparison()
    return format_table1() + "\n\n" + format_motivating_table(comparison)


def _cmd_table2(args: argparse.Namespace) -> str:
    rows = {
        name: dataset_statistics(
            spec.generate(seed=args.seed, scale=args.scale), spec.span
        )
        for name, spec in DATASETS.items()
    }
    return format_table2(rows)


def _cmd_table3(args: argparse.Namespace) -> str:
    import os

    from repro.experiments.runner import table3_manifest
    from repro.robust.checkpoint import RunCheckpoint

    config = _config(args)
    checkpoint_dir = args.resume or args.checkpoint_dir
    checkpoint = None
    if checkpoint_dir:
        if args.resume and not os.path.isdir(args.resume):
            raise SystemExit(
                f"error: --resume directory {args.resume!r} does not exist "
                "(use --checkpoint-dir to start a fresh checkpointed run)"
            )
        checkpoint = RunCheckpoint(checkpoint_dir)
        checkpoint.ensure_manifest(
            table3_manifest(
                [args.dataset or args.file] if (args.dataset or args.file) else None,
                config,
                args.methods,
                args.seed,
                args.scale,
            )
        )
        _LOG.info(
            "checkpointing to %s (%d cells already complete)",
            checkpoint_dir,
            len(checkpoint.completed_cells()),
        )
    if args.dataset or args.file:
        names_networks = [_load_network(args)]
    else:
        names_networks = [
            (name, spec.generate(seed=args.seed, scale=args.scale))
            for name, spec in DATASETS.items()
        ]
    results = {}
    for name, network in names_networks:
        experiment = LinkPredictionExperiment(
            network, config, checkpoint=checkpoint, dataset_name=name
        )
        results[name] = experiment.run_methods(args.methods)
    return format_table3(results, methods=args.methods)


def _cmd_ksweep(args: argparse.Namespace) -> str:
    from repro.viz import line_chart

    name, network = _load_network(args)
    results = k_sweep(
        network, config=_config(args), k_values=args.ks, method=args.method
    )
    table = format_k_sweep(results, dataset=name)
    chart = line_chart(
        {
            "AUC": [(k, results[k].auc) for k in sorted(results)],
            "F1": [(k, results[k].f1) for k in sorted(results)],
        },
        width=48,
        height=10,
    )
    return table + "\n\n" + chart


def _cmd_patterns(args: argparse.Namespace) -> str:
    name, network = _load_network(args)
    _, rendering = mine_frequent_pattern(
        network, n_samples=args.samples, k=args.k, seed=args.seed
    )
    return f"most frequent pattern on {name}:\n{rendering}"


def _cmd_motivating(args: argparse.Namespace) -> str:
    return format_motivating_table(motivating_comparison())


def _cmd_crossval(args: argparse.Namespace) -> str:
    name, network = _load_network(args)
    result = cross_validate_method(
        network,
        args.method,
        config=_config(args),
        n_folds=args.folds,
        seed=args.seed,
    )
    return f"{name}: {result}"


def _cmd_report(args: argparse.Namespace) -> str:
    from repro.experiments.report import generate_report

    # run-report mode: any observability artefact flag switches the
    # command from the dataset walkthrough to the artefact joiner
    if (
        args.metrics
        or args.checkpoint
        or args.bench
        or args.bench_history
        or args.profile
    ):
        from repro.obs.report import run_report

        report = run_report(
            metrics_path=args.metrics,
            checkpoint_dir=args.checkpoint,
            bench_path=args.bench,
            history_path=args.bench_history,
            profile_path=args.profile,
            json_out=args.json_out,
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(report)
            return f"run report written to {args.output}"
        return report

    name, network = _load_network(args)
    report = generate_report(network, name=name, config=_config(args))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        return f"report written to {args.output}"
    return report


def _cmd_recommend(args: argparse.Namespace) -> str:
    from repro.core.feature import SSFConfig
    from repro.recommend import LinkRecommender

    name, network = _load_network(args)
    recommender = LinkRecommender.fit(
        network, config=SSFConfig(k=args.k), model=args.model, seed=args.seed
    )
    # node labels are strings after file IO; try both forms for catalogs
    user = args.user
    if not network.has_node(user):
        try:
            candidate = int(user)
        except ValueError:
            candidate = None
        if candidate is not None and network.has_node(candidate):
            user = candidate
        else:
            raise SystemExit(f"error: node {args.user!r} not in {name}")
    suggestions = recommender.recommend(user, top_n=args.top)
    lines = [f"top {args.top} suggestions for {user!r} on {name}:"]
    lines.extend(f"  {s.node!r}  score={s.score:.3f}" for s in suggestions)
    return "\n".join(lines)


def _cmd_stream(args: argparse.Namespace) -> str:
    from repro.core.feature import SSFConfig
    from repro.streaming import StreamingSSFPredictor, prequential_evaluate

    name, network = _load_network(args)
    predictor = StreamingSSFPredictor(
        SSFConfig(k=args.k),
        model=args.model,
        refit_every=args.refit_every,
        seed=args.seed,
    )
    drift_threshold = args.drift_threshold if args.drift_threshold > 0 else None
    result = prequential_evaluate(
        network,
        predictor,
        warmup_fraction=args.warmup,
        drift_threshold=drift_threshold,
    )
    lines = [f"prequential streaming on {name}: mean AUC={result.mean_auc:.3f}"]
    lines.extend(
        f"  t={stamp:6.0f}  AUC={auc:.3f}"
        for stamp, auc in zip(result.timestamps, result.aucs)
    )
    for alert in result.alerts:
        lines.append(
            f"  ALERT t={alert['timestamp']:.0f}: window AUC {alert['auc']:.3f} "
            f"fell {alert['drift']:.3f} below running mean "
            f"{alert['mean_auc']:.3f} (threshold {alert['threshold']:g})"
        )
    return "\n".join(lines)


def _cmd_profile(args: argparse.Namespace) -> str:
    from repro.obs.profile import run_extraction_profile

    name, network = _load_network(args)
    return run_extraction_profile(
        network,
        dataset=name,
        k=args.k,
        n_pairs=args.pairs,
        mode=args.mode,
        seed=args.seed,
    )


def _cmd_bench(args: argparse.Namespace) -> "str | tuple[str, int]":
    import json

    from repro.obs.bench import compare_results, run_extraction_bench

    # load the baseline FIRST: --out and --compare may name the same
    # file, and the gate must diff against the committed state, not the
    # result this very run is about to write
    baseline = None
    if args.compare:
        with open(args.compare, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)

    parts: list[str] = []
    if args.current:
        with open(args.current, "r", encoding="utf-8") as fh:
            current = json.load(fh)
        parts.append(f"loaded current result from {args.current}")
    else:
        current = run_extraction_bench(
            n_nodes=args.nodes,
            n_pairs=args.pairs,
            k=args.k,
            seed=args.seed,
            out_path=args.out,
            history_path=args.history,
            tag=args.tag,
            batch=args.batch,
            batch_pairs=args.batch_pairs,
        )
        parts.append(json.dumps(current, indent=1, sort_keys=True))
        if not current["bit_identical"]:
            parts.append("FAIL: backends disagree")
            return "\n\n".join(parts), 1

    if baseline is not None:
        comparison = compare_results(
            current, baseline, max_regression=args.max_regression
        )
        parts.append(comparison.format())
        return "\n\n".join(parts), 0 if comparison.ok else 1
    return "\n\n".join(parts)


def _cmd_serve(args: argparse.Namespace) -> str:
    import json

    from repro.core.feature import SSFConfig
    from repro.obs.bench import append_history
    from repro.robust.policy import RetryPolicy
    from repro.serve import run_replay

    if not args.replay:
        raise SystemExit(
            "error: `repro serve` currently requires --replay (the live "
            "socket front-end is the replay harness's production twin)"
        )
    if args.nodes:
        from repro.obs.bench import synthetic_network

        network = synthetic_network(args.nodes, seed=args.seed)
        name = f"synthetic-{args.nodes}"
    else:
        name, network = _load_network(args)
    retry = (
        RetryPolicy(chunk_timeout=args.timeout)
        if args.timeout is not None
        else None
    )
    result = run_replay(
        network,
        queries=args.queries,
        concurrency=args.concurrency,
        top_n=args.top,
        model=args.model,
        config=SSFConfig(k=args.k),
        hot_users=args.hot_users,
        event_fraction=args.event_fraction,
        max_events=args.max_events,
        events_per_batch=args.events_per_batch,
        retry=retry,
        seed=args.seed,
    )
    bench = result.to_bench_result()
    if args.out:
        obs.atomic_write_text(
            args.out, json.dumps(bench, indent=1, sort_keys=True) + "\n"
        )
        _LOG.info("replay result written to %s", args.out)
    if args.history:
        append_history(args.history, bench)
        _LOG.info("history record appended to %s", args.history)
    return "\n\n".join(
        [
            f"serving replay over {name}",
            result.summary(),
            json.dumps(bench, indent=1, sort_keys=True),
        ]
    )


_HANDLERS = {
    "lint": execute_lint,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "stats": _cmd_stats,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "ksweep": _cmd_ksweep,
    "patterns": _cmd_patterns,
    "motivating": _cmd_motivating,
    "crossval": _cmd_crossval,
    "report": _cmd_report,
    "recommend": _cmd_recommend,
    "stream": _cmd_stream,
    "profile": _cmd_profile,
}


def main(argv: "Sequence[str] | None" = None) -> int:
    import json as _json

    args = build_parser().parse_args(argv)
    obs.configure_logging(level=args.log_level, json_lines=args.log_json)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    telemetry_port = getattr(args, "telemetry_port", None)
    heartbeat_path = getattr(args, "heartbeat", None)
    profile_out = getattr(args, "continuous_profile", None)
    # observability records only when something will consume it: a
    # metrics/trace dump was requested, a live consumer (telemetry
    # endpoint / heartbeat file) is attached, or the command *is* the
    # profiler.
    activate = (
        bool(metrics_out)
        or bool(trace_out)
        or telemetry_port is not None
        or bool(heartbeat_path)
        or args.command == "profile"
    )
    was_enabled = obs.enabled()
    was_recording = obs.recording()
    if activate:
        obs.enable()
    if trace_out:
        obs.drain_span_records()  # stale records must not leak into the file
        obs.record_spans(True)
    obs.set_phase(args.command)
    slo_engine = None
    if args.command == "serve":
        # the serving path's standing objectives: burn-rate alerts on
        # the obs.alert channel, repro_slo_* gauges, latency exemplars
        from repro.obs.slo import DEFAULT_SERVING_OBJECTIVES, configure_slo

        slo_engine = configure_slo(DEFAULT_SERVING_OBJECTIVES)
    profiler = None
    if profile_out:
        profiler = obs.ContinuousProfiler()
        profiler.start()
    publisher = None
    if telemetry_port is not None:
        publisher = obs.TelemetryPublisher(telemetry_port).start()
        _LOG.info("live telemetry at %s/metrics", publisher.url)
    if heartbeat_path:
        obs.configure_heartbeat(heartbeat_path)
        obs.heartbeat_tick(args.command, force=True)
    exit_code = 0
    try:
        result = _HANDLERS[args.command](args)
        # handlers return the report text, or (text, exit_code) when the
        # command's outcome must be visible to the shell (e.g. lint)
        if isinstance(result, tuple):
            result, exit_code = result
        print(result)
        if metrics_out:
            if slo_engine is not None:
                # gauges land in the snapshot, the full objective status
                # rides the JSON under "slo" for `repro report`
                slo_engine.publish()
                snapshot = _json.loads(obs.get_registry().to_json())
                snapshot["slo"] = slo_engine.status_dict()
                text = _json.dumps(snapshot, indent=1, sort_keys=True)
            else:
                text = obs.get_registry().to_json()
            obs.atomic_write_text(metrics_out, text + "\n")
            _LOG.info("metrics snapshot written to %s", metrics_out)
        if trace_out:
            written = obs.write_trace(trace_out)
            _LOG.info("%d trace events written to %s", written, trace_out)
    finally:
        obs.set_phase(f"{args.command}:done")
        if profiler is not None:
            profiler.stop()
            profiler.write_collapsed(profile_out)
            _LOG.info(
                "continuous profile (%d stacks) written to %s",
                sum(profiler.samples.values()),
                profile_out,
            )
        if heartbeat_path:
            obs.heartbeat_tick(f"{args.command}:done", force=True)
            obs.configure_heartbeat(None)
        if publisher is not None:
            linger = getattr(args, "telemetry_linger", 0.0) or 0.0
            if linger > 0:
                _LOG.info(
                    "telemetry endpoint lingering %.1fs at %s/metrics",
                    linger,
                    publisher.url,
                )
                time.sleep(linger)
            publisher.stop()
        if slo_engine is not None:
            from repro.obs.slo import configure_slo

            configure_slo(None)
        if trace_out:
            obs.record_spans(was_recording)
        if activate and not was_enabled:
            obs.disable()
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Reliable Weighted Resource Allocation (rWRA) — Zhao et al.

The only heuristic in the paper's Table I flagged as dynamic-aware: it
keeps multi-link information by weighting the resource-allocation sum with
link weights,

    rWRA(x, y) = Σ_{z ∈ Γ(x) ∩ Γ(y)}  W(x,z) · W(y,z) / S(z),

where ``W(u, v)`` is the number of historical links between ``u`` and
``v`` (Sec. VI-C2: "the weights of links for rWRA are set as the number of
history links between two nodes") and ``S(z) = Σ_{z' ∈ Γ(z)} W(z, z')`` is
``z``'s total weighted strength.
"""

from __future__ import annotations

from typing import Hashable

from repro.baselines.base import LinkScorer
from repro.graph.temporal import DynamicNetwork

Node = Hashable


class ReliableWeightedResourceAllocation(LinkScorer):
    """rWRA with multi-link-count weights."""

    name = "rWRA"

    def __init__(self) -> None:
        super().__init__()
        self._network: "DynamicNetwork | None" = None
        self._strength: dict[Node, float] = {}

    def _prepare(self, network: DynamicNetwork) -> None:
        self._network = network
        self._strength = {
            node: float(network.degree(node)) for node in network.nodes
        }

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        assert self._network is not None
        net = self._network
        total = 0.0
        for z in self.graph.common_neighbors(u, v):
            strength = self._strength[z]
            if strength > 0:
                total += net.multiplicity(u, z) * net.multiplicity(v, z) / strength
        return total

"""Time-aware heuristic scorers — the "trivially temporal" ablation.

The paper's baselines are either static (CN, AA, …) or only multi-link
aware (rWRA).  A natural question the paper leaves open is whether SSF's
gains come from the *structure subgraph* or merely from *using
timestamps at all*; these scorers answer it by injecting the same
exponential decay (Eq. 2) into the classic heuristics:

* :class:`TemporalCommonNeighbors` — ``Σ_z min(I(x,z), I(z,y))`` where
  ``I(u,v)`` is the normalized influence of the ``u–v`` links: a common
  neighbour counts only as much as the *weaker, staler* of its two
  connections.
* :class:`TemporalResourceAllocation` — resource allocation with
  influence-weighted transfer: ``Σ_z I(x,z)·I(z,y) / S_I(z)`` with
  ``S_I(z)`` the total influence mass at ``z``.
* :class:`RecentActivity` — ``I(x, ·) · I(·, y)`` total recent activity
  of the two end nodes (a temporal preferential-attachment analogue).

All three reuse the unsupervised-ranking protocol of the other
baselines, so they drop into the experiment runner unchanged.
"""

from __future__ import annotations

from typing import Hashable

from repro.baselines.base import LinkScorer
from repro.core.influence import DEFAULT_THETA, normalized_influence
from repro.graph.temporal import DynamicNetwork

Node = Hashable


class _TemporalScorer(LinkScorer):
    """Shared machinery: per-pair influence with a fitted present time."""

    def __init__(self, theta: float = DEFAULT_THETA) -> None:
        super().__init__()
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.theta = theta
        self._network: "DynamicNetwork | None" = None
        self._present: float = 0.0
        self._influence_cache: dict[tuple, float] = {}

    def _prepare(self, network: DynamicNetwork) -> None:
        self._network = network
        self._present = (
            network.last_timestamp() + 1.0 if network.number_of_links() else 0.0
        )
        self._influence_cache.clear()

    def _influence(self, u: Node, v: Node) -> float:
        """Decayed influence of all ``u–v`` links at the present time."""
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        cached = self._influence_cache.get(key)
        if cached is None:
            assert self._network is not None
            cached = normalized_influence(
                self._network.timestamps(u, v), self._present, self.theta
            )
            self._influence_cache[key] = cached
        return cached

    def _node_strength(self, u: Node) -> float:
        """Total influence mass incident to ``u`` (``S_I`` above)."""
        assert self._network is not None
        return sum(self._influence(u, z) for z in self._network.neighbor_view(u))


class TemporalCommonNeighbors(_TemporalScorer):
    """Influence-weighted common neighbours (min-coupled)."""

    name = "tCN"

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        total = 0.0
        for z in self.graph.common_neighbors(u, v):
            total += min(self._influence(u, z), self._influence(v, z))
        return total


class TemporalResourceAllocation(_TemporalScorer):
    """Resource allocation over influence mass instead of degree."""

    name = "tRA"

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        total = 0.0
        for z in self.graph.common_neighbors(u, v):
            strength = self._node_strength(z)
            if strength > 0:
                total += self._influence(u, z) * self._influence(v, z) / strength
        return total


class RecentActivity(_TemporalScorer):
    """Product of the end nodes' recent activity (temporal PA)."""

    name = "tPA"

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        return self._node_strength(u) * self._node_strength(v)

"""WLF — the Weisfeiler–Lehman link feature of Zhang & Chen (KDD 2017).

The baseline the paper's SSF is designed against (Table I: "universal" but
not "dynamic").  For a target link, the *enclosing subgraph* of the K
nearest plain nodes is extracted, ordered with the same Palette-WL
algorithm, and its 0/1 upper-triangle adjacency (minus the target entry)
is unfolded into a vector of length ``K(K-1)/2 - 1`` — consumed by the
WLLR (linear regression) and WLNM (neural machine) baselines.

Implementation reuses the structure-subgraph machinery with merging
disabled: a degenerate :class:`~repro.core.structure.StructureSubgraph`
whose structure nodes are all singletons is ordered by the identical
Palette-WL code path, which keeps the two baselines' ordering semantics
exactly comparable.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.core.distance import distances_to_link
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import StructureSubgraph
from repro.graph.temporal import DynamicNetwork

Node = Hashable


def wlf_feature_dim(k: int) -> int:
    """Length of a WLF vector: ``K(K-1)/2 - 1`` (same shape as SSF)."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    return k * (k - 1) // 2 - 1


class WLFExtractor:
    """Extracts WLF vectors for target links of one observed network.

    Args:
        network: the observed history; the static structure is used
            (timestamps and multiplicities ignored, per the paper's
            "static version" protocol).
        k: number of enclosing-subgraph nodes (paper default 10).
    """

    def __init__(self, network: DynamicNetwork, k: int = 10) -> None:
        if k < 3:
            raise ValueError(f"k must be >= 3 for a non-empty feature, got {k}")
        self._network = network
        self._k = k

    @property
    def k(self) -> int:
        return self._k

    @property
    def feature_dim(self) -> int:
        return wlf_feature_dim(self._k)

    def extract(self, a: Node, b: Node) -> np.ndarray:
        """The WLF vector of target link ``(a, b)``.

        Unseen end nodes yield the all-zero vector, mirroring
        :class:`~repro.core.feature.SSFExtractor`.
        """
        out = np.zeros(self.feature_dim, dtype=np.float64)
        if not (self._network.has_node(a) and self._network.has_node(b)):
            return out

        selected, subgraph = self._enclosing_subgraph(a, b)
        k = self._k
        pos = 0
        for n in range(3, k + 1):
            for m in range(1, n):
                if (
                    n <= len(selected)
                    and subgraph.has_structure_link(selected[m - 1], selected[n - 1])
                ):
                    out[pos] = 1.0
                pos += 1
        return out

    def extract_batch(self, pairs: "list[tuple[Node, Node]]") -> np.ndarray:
        if not pairs:
            return np.zeros((0, self.feature_dim))
        return np.stack([self.extract(a, b) for a, b in pairs])

    def _enclosing_subgraph(
        self, a: Node, b: Node
    ) -> tuple[list[int], StructureSubgraph]:
        """Top-K plain nodes by Palette-WL order, plus their subgraph."""
        distances = distances_to_link(self._network, a, b)
        max_distance = max(distances.values())
        h = 0
        node_set: set[Node] = set()
        while True:
            h += 1
            node_set = {n for n, d in distances.items() if d <= h}
            if len(node_set) >= self._k or h >= max(1, max_distance):
                break

        subgraph = _singleton_structure_subgraph(self._network, node_set, a, b)
        order = palette_wl_order(subgraph)
        by_order = sorted(range(len(order)), key=lambda i: order[i])
        return by_order[: min(self._k, len(by_order))], subgraph


def _singleton_structure_subgraph(
    network: DynamicNetwork, node_set: set[Node], a: Node, b: Node
) -> StructureSubgraph:
    """A StructureSubgraph whose nodes are all singletons (no merging)."""
    ordered = [a, b] + [n for n in node_set if n != a and n != b]
    index = {n: i for i, n in enumerate(ordered)}
    adjacency = []
    for n in ordered:
        row = network.neighbor_view(n)
        adjacency.append(frozenset(index[m] for m in row if m in index))
    return StructureSubgraph(
        network=network,
        node_set=frozenset(node_set),
        member_sets=[frozenset([n]) for n in ordered],
        adjacency=adjacency,
        endpoints=(a, b),
    )

"""Path-counting scorers: Katz index (Katz 1953) and Local Path index.

Katz sums damped walk counts of every length,

    Katz(x, y) = Σ_{l=1..∞} β^l (A^l)_{xy},

here truncated at ``max_length`` terms (β = 0.001 per Sec. VI-C2 makes the
tail negligible: the l-th term is bounded by ``(β Δ)^l``).  Walk counts
are obtained by repeated sparse matrix–vector products from each queried
source node, cached per source, so scoring p pairs costs
``O(p · max_length · |E|)`` instead of a dense matrix power.

The Local Path index (Lü, Jin & Zhou 2009) — ``A² + ε A³`` — is included
as a related-work extra; the paper discusses it (ref. [8]) without
benchmarking it.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import LinkScorer
from repro.graph.temporal import DynamicNetwork

Node = Hashable


class _SparseWalkScorer(LinkScorer):
    """Shared machinery: sparse adjacency + cached per-source walk counts."""

    def __init__(self, max_length: int) -> None:
        super().__init__()
        if max_length < 2:
            raise ValueError(f"max_length must be >= 2, got {max_length}")
        self.max_length = max_length
        self._index: dict[Node, int] = {}
        self._matrix: "sp.csr_matrix | None" = None
        #: source node -> list of walk-count vectors for lengths 1..max_length
        self._walk_cache: dict[Node, list[np.ndarray]] = {}

    def _prepare(self, network: DynamicNetwork) -> None:
        self._index = self.graph.node_index()
        n = len(self._index)
        rows, cols = [], []
        for u, v in self.graph.edges():
            i, j = self._index[u], self._index[v]
            rows.extend((i, j))
            cols.extend((j, i))
        data = np.ones(len(rows), dtype=np.float64)
        self._matrix = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
        self._walk_cache.clear()

    def _walk_counts(self, source: Node) -> list[np.ndarray]:
        """Vectors ``(A^l) e_source`` for ``l = 1..max_length``."""
        cached = self._walk_cache.get(source)
        if cached is not None:
            return cached
        assert self._matrix is not None
        vec = np.zeros(self._matrix.shape[0])
        vec[self._index[source]] = 1.0
        counts: list[np.ndarray] = []
        for _ in range(self.max_length):
            vec = self._matrix @ vec
            counts.append(vec)
        self._walk_cache[source] = counts
        return counts


class Katz(_SparseWalkScorer):
    """Truncated Katz index with damping factor ``beta``."""

    name = "Katz"

    def __init__(self, beta: float = 0.001, max_length: int = 5) -> None:
        super().__init__(max_length)
        if not 0.0 < beta < 1.0:
            raise ValueError(f"beta must be in (0, 1), got {beta}")
        self.beta = beta

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        target = self._index[v]
        total = 0.0
        damp = 1.0
        for counts in self._walk_counts(u):
            damp *= self.beta
            total += damp * counts[target]
        return total


class LocalPath(_SparseWalkScorer):
    """Local Path index ``(A²)_{xy} + ε (A³)_{xy}`` (Lü et al. 2009)."""

    name = "LP"

    def __init__(self, epsilon: float = 0.01) -> None:
        super().__init__(max_length=3)
        self.epsilon = epsilon

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        target = self._index[v]
        counts = self._walk_counts(u)
        return float(counts[1][target] + self.epsilon * counts[2][target])

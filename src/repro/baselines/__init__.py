"""The paper's 11 baseline link-prediction methods (Table I / Sec. VI-C1).

Heuristic scorers operate on the static projection of the observed dynamic
network; rWRA additionally uses multi-link counts as weights; NMF
factorises the adjacency matrix; WLF is the Weisfeiler–Lehman enclosing
subgraph feature of Zhang & Chen (KDD 2017) consumed by the WLLR/WLNM
models.
"""

from repro.baselines.base import LinkScorer
from repro.baselines.embedding import SpectralEmbedding, TemporalNMF
from repro.baselines.local import (
    AdamicAdar,
    CommonNeighbors,
    Jaccard,
    PreferentialAttachment,
    ResourceAllocation,
)
from repro.baselines.nmf import NMFLinkPredictor, nmf_factorize
from repro.baselines.paths import Katz, LocalPath
from repro.baselines.randomwalk import LocalRandomWalk
from repro.baselines.temporal import (
    RecentActivity,
    TemporalCommonNeighbors,
    TemporalResourceAllocation,
)
from repro.baselines.weighted import ReliableWeightedResourceAllocation
from repro.baselines.wlf import WLFExtractor, wlf_feature_dim

__all__ = [
    "LinkScorer",
    "CommonNeighbors",
    "Jaccard",
    "PreferentialAttachment",
    "AdamicAdar",
    "ResourceAllocation",
    "ReliableWeightedResourceAllocation",
    "Katz",
    "LocalPath",
    "LocalRandomWalk",
    "TemporalCommonNeighbors",
    "TemporalResourceAllocation",
    "RecentActivity",
    "NMFLinkPredictor",
    "nmf_factorize",
    "TemporalNMF",
    "SpectralEmbedding",
    "WLFExtractor",
    "wlf_feature_dim",
]

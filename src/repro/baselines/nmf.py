"""Non-negative matrix factorisation link prediction (Sec. VI-C1, "NMF").

The observed static adjacency matrix ``A`` is factorised as
``A ≈ W Hᵀ`` with non-negative factors of rank ``r``; the reconstruction
``(W Hᵀ)_{xy}`` scores candidate links.  Two solvers are provided:

* ``"pg"`` — alternating non-negative least squares where each subproblem
  is solved by the projected-gradient method of Lin (2007), the reference
  the paper cites ([24]);
* ``"mu"`` — the classic Lee–Seung multiplicative updates, cheaper per
  iteration and handy for tests.

Both operate on a sparse ``A`` so only ``O(nnz · r)`` work per iteration
touches the data matrix.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import LinkScorer
from repro.graph.temporal import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable

_EPS = 1e-12


def nmf_factorize(
    matrix: "sp.spmatrix | np.ndarray",
    rank: int,
    *,
    method: str = "pg",
    max_iter: int = 100,
    tol: float = 1e-4,
    seed: RngLike = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Factorise a non-negative matrix as ``A ≈ W Hᵀ``.

    Args:
        matrix: non-negative (n, m) matrix, sparse or dense.
        rank: number of latent factors ``r >= 1``.
        method: ``"pg"`` (projected gradient ANLS, Lin 2007) or ``"mu"``
            (multiplicative updates).
        max_iter: outer iterations.
        tol: stop when the relative objective improvement falls below this.
        seed: RNG for the non-negative random initialisation.

    Returns:
        ``(W, H)`` with shapes (n, r) and (m, r).
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    if method not in ("pg", "mu"):
        raise ValueError(f"method must be 'pg' or 'mu', got {method!r}")
    a = sp.csr_matrix(matrix, dtype=np.float64)
    if a.nnz and a.data.min() < 0:
        raise ValueError("NMF requires a non-negative matrix")
    rng = ensure_rng(seed)
    n, m = a.shape
    scale = np.sqrt(max(a.mean(), _EPS) / rank)
    w = rng.random((n, rank)) * scale + _EPS
    h = rng.random((m, rank)) * scale + _EPS

    previous = np.inf
    for _ in range(max_iter):
        if method == "mu":
            w, h = _multiplicative_step(a, w, h)
        else:
            h = _projected_gradient_nnls(a.T.tocsr(), w, h)
            w = _projected_gradient_nnls(a, h, w)
        objective = _objective(a, w, h)
        if previous - objective <= tol * max(previous, _EPS):
            break
        previous = objective
    return w, h


def _objective(a: sp.csr_matrix, w: np.ndarray, h: np.ndarray) -> float:
    """``0.5 ||A - W Hᵀ||_F²`` computed without densifying ``W Hᵀ``."""
    # ||A||² - 2 <A, WHᵀ> + ||WHᵀ||²
    norm_a = float(a.multiply(a).sum())
    cross = float(np.sum((a @ h) * w))
    gram = (w.T @ w) @ (h.T @ h)
    return 0.5 * (norm_a - 2.0 * cross + float(np.trace(gram)))


def _multiplicative_step(
    a: sp.csr_matrix, w: np.ndarray, h: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """One round of Lee–Seung updates for both factors."""
    wh_h = w @ (h.T @ h)
    w = w * ((a @ h) + _EPS) / (wh_h + _EPS)
    hw_w = h @ (w.T @ w)
    h = h * ((a.T @ w) + _EPS) / (hw_w + _EPS)
    return w, h


def _projected_gradient_nnls(
    a: sp.csr_matrix,
    basis: np.ndarray,
    start: np.ndarray,
    *,
    max_inner: int = 20,
    tol: float = 1e-4,
) -> np.ndarray:
    """Solve ``min_{X >= 0} 0.5 ||A - X Basisᵀ||²`` by projected gradient.

    This is the sub-problem solver of Lin (2007) with Armijo-style
    backtracking on the step size.
    """
    x = start.copy()
    gram = basis.T @ basis  # (r, r)
    atb = (a @ basis)  # (n, r)
    alpha = 1.0
    beta = 0.1
    sigma = 0.01
    for _ in range(max_inner):
        grad = x @ gram - atb
        # Projected-gradient norm as the stopping measure (Lin 2007, eq. 6).
        projected = grad.copy()
        mask = x <= 0
        projected[mask] = np.minimum(projected[mask], 0.0)
        if np.linalg.norm(projected) <= tol * (1.0 + np.linalg.norm(atb)):
            break
        # Backtracking line search on alpha.
        for _ in range(30):
            x_new = np.maximum(x - alpha * grad, 0.0)
            delta = x_new - x
            # Sufficient-decrease condition using the quadratic model.
            decrease = float(np.sum(grad * delta)) + 0.5 * float(
                np.sum((delta @ gram) * delta)
            )
            if decrease <= sigma * float(np.sum(grad * delta)):
                # condition satisfied when decrease is negative enough
                break
            alpha *= beta
        else:  # pragma: no cover - pathological conditioning
            break
        x = x_new
        alpha = min(alpha / beta, 1.0)  # allow the step to grow back
    return x


class NMFLinkPredictor(LinkScorer):
    """Link scorer backed by :func:`nmf_factorize` of the static adjacency."""

    name = "NMF"

    def __init__(
        self,
        rank: int = 32,
        *,
        method: str = "pg",
        max_iter: int = 60,
        seed: RngLike = 0,
    ) -> None:
        super().__init__()
        self.rank = rank
        self.method = method
        self.max_iter = max_iter
        self.seed = seed
        self._index: dict[Node, int] = {}
        self._w: "np.ndarray | None" = None
        self._h: "np.ndarray | None" = None

    def _prepare(self, network: DynamicNetwork) -> None:
        graph = self.graph
        self._index = graph.node_index()
        n = len(self._index)
        rows, cols = [], []
        for u, v in graph.edges():
            i, j = self._index[u], self._index[v]
            rows.extend((i, j))
            cols.extend((j, i))
        a = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n), dtype=np.float64
        )
        rank = min(self.rank, max(1, n - 1))
        self._w, self._h = nmf_factorize(
            a, rank, method=self.method, max_iter=self.max_iter, seed=self.seed
        )

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        assert self._w is not None and self._h is not None
        iu, iv = self._index[u], self._index[v]
        # Symmetrised reconstruction (A is symmetric, the factors need not be).
        forward = float(self._w[iu] @ self._h[iv])
        backward = float(self._w[iv] @ self._h[iu])
        return 0.5 * (forward + backward)

"""Common interface for unsupervised link scorers.

Every scorer follows a two-phase protocol: :meth:`LinkScorer.fit` ingests
the observed dynamic network (precomputing whatever the scorer needs —
static projection, weight sums, sparse matrices), after which
:meth:`LinkScorer.score` evaluates any candidate node pair.  Higher scores
mean "more likely to emerge" for every scorer.
"""

from __future__ import annotations

import abc
from typing import Hashable, Sequence

import numpy as np

from repro.graph.static import StaticGraph
from repro.graph.temporal import DynamicNetwork

Node = Hashable


class LinkScorer(abc.ABC):
    """Base class for similarity/closeness link scorers."""

    #: short name used in tables (subclasses override)
    name: str = "scorer"

    def __init__(self) -> None:
        self._graph: "StaticGraph | None" = None

    @property
    def graph(self) -> StaticGraph:
        """The fitted static projection (raises if :meth:`fit` not called)."""
        if self._graph is None:
            raise RuntimeError(f"{type(self).__name__} must be fit before scoring")
        return self._graph

    def fit(self, network: DynamicNetwork) -> "LinkScorer":
        """Ingest the observed history; returns ``self`` for chaining."""
        self._graph = network.static_projection()
        self._prepare(network)
        return self

    def _prepare(self, network: DynamicNetwork) -> None:
        """Hook for subclasses needing more than the static projection."""

    @abc.abstractmethod
    def score(self, u: Node, v: Node) -> float:
        """Closeness score of the candidate link ``(u, v)``.

        Pairs with unseen end nodes score 0 (no evidence either way).
        """

    def score_pairs(self, pairs: Sequence[tuple[Node, Node]]) -> np.ndarray:
        """Vector of scores for many candidate links."""
        return np.array([self.score(u, v) for u, v in pairs], dtype=np.float64)

    def _both_known(self, u: Node, v: Node) -> bool:
        g = self.graph
        return g.has_node(u) and g.has_node(v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fitted = "fitted" if self._graph is not None else "unfitted"
        return f"{type(self).__name__}({fitted})"

"""Factorisation/embedding scorers beyond the paper's NMF baseline.

* :class:`TemporalNMF` — non-negative factorisation of the *influence-
  weighted* adjacency matrix ``W[u, v] = Σ_links exp(-θ (l_t - l_k))``.
  This follows Yu et al. (IJCAI 2017) — the paper's reference [28] and
  the source of its Eq. 2 decay — in spirit: the temporal analogue of
  the static NMF baseline, with the same solver.
* :class:`SpectralEmbedding` — classic spectral link prediction: embed
  nodes with the top-``rank`` eigenvectors of the (symmetrised, degree-
  normalised) adjacency and score pairs by the reconstructed affinity.
  A useful sanity baseline between the local heuristics and NMF.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.baselines.base import LinkScorer
from repro.baselines.nmf import nmf_factorize
from repro.core.influence import DEFAULT_THETA, normalized_influence
from repro.graph.temporal import DynamicNetwork
from repro.utils.rng import RngLike

Node = Hashable


class TemporalNMF(LinkScorer):
    """NMF of the influence-weighted adjacency (temporal ref-[28] analogue)."""

    name = "tNMF"

    def __init__(
        self,
        rank: int = 32,
        *,
        theta: float = DEFAULT_THETA,
        method: str = "pg",
        max_iter: int = 60,
        seed: RngLike = 0,
    ) -> None:
        super().__init__()
        if not 0.0 < theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {theta}")
        self.rank = rank
        self.theta = theta
        self.method = method
        self.max_iter = max_iter
        self.seed = seed
        self._index: dict[Node, int] = {}
        self._w: "np.ndarray | None" = None
        self._h: "np.ndarray | None" = None

    def _prepare(self, network: DynamicNetwork) -> None:
        self._index = self.graph.node_index()
        n = len(self._index)
        present = (
            network.last_timestamp() + 1.0 if network.number_of_links() else 0.0
        )
        rows, cols, data = [], [], []
        for u, v in network.pair_iter():
            weight = normalized_influence(
                network.timestamps(u, v), present, self.theta
            )
            if weight <= 0:
                continue
            i, j = self._index[u], self._index[v]
            rows.extend((i, j))
            cols.extend((j, i))
            data.extend((weight, weight))
        matrix = sp.csr_matrix(
            (np.array(data), (rows, cols)), shape=(n, n), dtype=np.float64
        )
        rank = min(self.rank, max(1, n - 1))
        self._w, self._h = nmf_factorize(
            matrix, rank, method=self.method, max_iter=self.max_iter, seed=self.seed
        )

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        assert self._w is not None and self._h is not None
        iu, iv = self._index[u], self._index[v]
        forward = float(self._w[iu] @ self._h[iv])
        backward = float(self._w[iv] @ self._h[iu])
        return 0.5 * (forward + backward)


class SpectralEmbedding(LinkScorer):
    """Top-eigenvector embedding of the normalised adjacency."""

    name = "Spectral"

    def __init__(self, rank: int = 32) -> None:
        super().__init__()
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        self.rank = rank
        self._index: dict[Node, int] = {}
        self._embedding: "np.ndarray | None" = None
        self._eigenvalues: "np.ndarray | None" = None

    def _prepare(self, network: DynamicNetwork) -> None:
        graph = self.graph
        self._index = graph.node_index()
        n = len(self._index)
        rows, cols = [], []
        for u, v in graph.edges():
            i, j = self._index[u], self._index[v]
            rows.extend((i, j))
            cols.extend((j, i))
        adjacency = sp.csr_matrix(
            (np.ones(len(rows)), (rows, cols)), shape=(n, n)
        )
        # symmetric degree normalisation D^{-1/2} A D^{-1/2}
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        inv_sqrt = np.zeros_like(degrees)
        positive = degrees > 0
        inv_sqrt[positive] = 1.0 / np.sqrt(degrees[positive])
        scaling = sp.diags(inv_sqrt)
        normalised = scaling @ adjacency @ scaling

        rank = min(self.rank, max(1, n - 2))
        try:
            values, vectors = spla.eigsh(normalised, k=rank, which="LA")
        except (spla.ArpackNoConvergence, ValueError):
            dense = normalised.toarray()
            all_values, all_vectors = np.linalg.eigh(dense)
            values = all_values[-rank:]
            vectors = all_vectors[:, -rank:]
        self._eigenvalues = values
        self._embedding = vectors

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        assert self._embedding is not None and self._eigenvalues is not None
        iu, iv = self._index[u], self._index[v]
        return float(
            (self._embedding[iu] * self._eigenvalues) @ self._embedding[iv]
        )

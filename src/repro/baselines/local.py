"""Local-neighbourhood heuristics: CN, Jaccard, PA, AA, RA (Table I).

All five score a candidate link from the one-hop neighbourhoods of its end
nodes on the static projection:

* Common Neighbours (Liben-Nowell & Kleinberg 2003):
  ``|Γ(x) ∩ Γ(y)|``
* Jaccard (1912): ``|Γ(x) ∩ Γ(y)| / |Γ(x) ∪ Γ(y)|``
* Preferential Attachment (Barabási & Albert 1999): ``|Γ(x)|·|Γ(y)|``
* Adamic–Adar (2003): ``Σ_{z ∈ Γ(x) ∩ Γ(y)} 1 / log|Γ(z)|``
* Resource Allocation (Zhou, Lü & Zhang 2009):
  ``Σ_{z ∈ Γ(x) ∩ Γ(y)} 1 / |Γ(z)|``
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.baselines.base import LinkScorer

Node = Hashable


class CommonNeighbors(LinkScorer):
    """``CN(x, y) = |Γ(x) ∩ Γ(y)|``."""

    name = "CN"

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        return float(len(self.graph.common_neighbors(u, v)))


class Jaccard(LinkScorer):
    """``Jac(x, y) = |Γ(x) ∩ Γ(y)| / |Γ(x) ∪ Γ(y)|`` (0 when both isolated)."""

    name = "Jac."

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        g = self.graph
        nu, nv = g.neighbor_view(u), g.neighbor_view(v)
        union = len(nu | nv)
        if union == 0:
            return 0.0
        return len(nu & nv) / union


class PreferentialAttachment(LinkScorer):
    """``PA(x, y) = |Γ(x)| · |Γ(y)|``."""

    name = "PA"

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        g = self.graph
        return float(g.degree(u) * g.degree(v))


class AdamicAdar(LinkScorer):
    """``AA(x, y) = Σ_{z ∈ Γ(x) ∩ Γ(y)} 1 / log|Γ(z)|``.

    Degree-1 common neighbours (``log 1 = 0``) are skipped — the standard
    guard; such a ``z`` cannot occur anyway because a common neighbour has
    degree >= 2 on the static projection.
    """

    name = "AA"

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        g = self.graph
        total = 0.0
        for z in g.common_neighbors(u, v):
            deg = g.degree(z)
            if deg > 1:
                total += 1.0 / math.log(deg)
        return total


class ResourceAllocation(LinkScorer):
    """``RA(x, y) = Σ_{z ∈ Γ(x) ∩ Γ(y)} 1 / |Γ(z)|``."""

    name = "RA"

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        g = self.graph
        return sum(1.0 / g.degree(z) for z in g.common_neighbors(u, v))

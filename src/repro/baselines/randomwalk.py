"""Local Random Walk scorer (Liu & Lü 2010) — "RW" in the paper's tables.

A walker starts at ``x`` with the stationary initial weight
``q_x = |Γ(x)| / 2|E|`` and takes ``t`` steps of the row-normalised
transition matrix ``M`` (``p_x^t = M^T p_x^{t-1}``, Table I).  The
symmetric local-random-walk similarity is

    RW_t(x, y) = q_x · p_x^t[y] + q_y · p_y^t[x].

``t = 3`` captures the short-range structure the original paper found most
informative; walk distributions are cached per source node.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np
import scipy.sparse as sp

from repro.baselines.base import LinkScorer
from repro.graph.temporal import DynamicNetwork

Node = Hashable


class LocalRandomWalk(LinkScorer):
    """t-step local random walk similarity."""

    name = "RW"

    def __init__(self, steps: int = 3) -> None:
        super().__init__()
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        self.steps = steps
        self._index: dict[Node, int] = {}
        self._transition_t: "sp.csr_matrix | None" = None
        self._initial_weight: dict[Node, float] = {}
        self._walk_cache: dict[Node, np.ndarray] = {}

    def _prepare(self, network: DynamicNetwork) -> None:
        graph = self.graph
        self._index = graph.node_index()
        n = len(self._index)
        rows, cols, data = [], [], []
        for u, v in graph.edges():
            i, j = self._index[u], self._index[v]
            # M[i, j] = 1/deg(i); we store M^T so stepping is a single matvec.
            rows.extend((j, i))
            cols.extend((i, j))
            data.extend((1.0 / graph.degree(u), 1.0 / graph.degree(v)))
        self._transition_t = sp.csr_matrix(
            (np.array(data), (rows, cols)), shape=(n, n)
        )
        num_edges = graph.number_of_edges()
        denom = 2.0 * num_edges if num_edges else 1.0
        self._initial_weight = {
            node: graph.degree(node) / denom for node in graph.nodes
        }
        self._walk_cache.clear()

    def _distribution(self, source: Node) -> np.ndarray:
        """``p_source`` after ``self.steps`` transition steps."""
        cached = self._walk_cache.get(source)
        if cached is not None:
            return cached
        assert self._transition_t is not None
        vec = np.zeros(self._transition_t.shape[0])
        vec[self._index[source]] = 1.0
        for _ in range(self.steps):
            vec = self._transition_t @ vec
        self._walk_cache[source] = vec
        return vec

    def score(self, u: Node, v: Node) -> float:
        if not self._both_known(u, v):
            return 0.0
        iu, iv = self._index[u], self._index[v]
        forward = self._initial_weight[u] * self._distribution(u)[iv]
        backward = self._initial_weight[v] * self._distribution(v)[iu]
        return float(forward + backward)

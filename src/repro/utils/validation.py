"""Argument-validation helpers with consistent error messages."""

from __future__ import annotations

import math
from typing import Any


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_positive(value: Any, name: str) -> float:
    """Validate that ``value`` is a finite number > 0 and return it as float."""
    out = _check_finite_number(value, name)
    if out <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return out


def check_non_negative(value: Any, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0 and return it as float."""
    out = _check_finite_number(value, name)
    if out < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return out


def check_fraction(value: Any, name: str, *, inclusive: bool = True) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` (or ``(0, 1)``)."""
    out = _check_finite_number(value, name)
    if inclusive:
        if not 0.0 <= out <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < out < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return out


def _check_finite_number(value: Any, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    out = float(value)
    if not math.isfinite(out):
        raise ValueError(f"{name} must be finite, got {value}")
    return out

"""Shared low-level utilities: prime tables, RNG helpers, validation."""

from repro.utils.primes import nth_prime, primes_up_to_count
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "nth_prime",
    "primes_up_to_count",
    "ensure_rng",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
]

"""Prime number utilities for the Palette-WL ordering (Algorithm 2).

The Palette-WL hash of a structure node mixes the logarithms of the primes
indexed by the current orders of its neighbours, ``log(P(C(N)))`` where
``P(n)`` is the n-th prime.  Orders are small (bounded by the number of
structure nodes in a subgraph), so a growable cached sieve is sufficient.
"""

from __future__ import annotations

import math
from bisect import bisect_right

# Cached ascending list of primes, extended on demand.  Module-level cache is
# intentional: every SSF extraction re-uses the same small prefix.
_PRIME_CACHE: list[int] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]


def _extend_cache(count: int) -> None:
    """Grow the prime cache until it holds at least ``count`` primes."""
    if count <= len(_PRIME_CACHE):
        return
    # Upper bound for the n-th prime (Rosser's theorem, n >= 6):
    # p_n < n (ln n + ln ln n).  Add slack for small n.
    n = max(count, 6)
    limit = int(n * (math.log(n) + math.log(math.log(n)))) + 10
    sieve = bytearray([1]) * (limit + 1)
    sieve[0:2] = b"\x00\x00"
    for p in range(2, int(limit**0.5) + 1):
        if sieve[p]:
            sieve[p * p :: p] = b"\x00" * len(range(p * p, limit + 1, p))
    _PRIME_CACHE[:] = [i for i in range(limit + 1) if sieve[i]]
    if len(_PRIME_CACHE) < count:  # pragma: no cover - bound is proven safe
        raise RuntimeError("prime sieve bound too small; this is a bug")


def nth_prime(n: int) -> int:
    """Return the ``n``-th prime, 1-indexed (``nth_prime(1) == 2``).

    Raises:
        ValueError: if ``n`` is not a positive integer.
    """
    if n < 1:
        raise ValueError(f"prime index must be >= 1, got {n}")
    _extend_cache(n)
    return _PRIME_CACHE[n - 1]


def primes_up_to_count(count: int) -> list[int]:
    """Return the first ``count`` primes as a list."""
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return []
    _extend_cache(count)
    return _PRIME_CACHE[:count]


def log_prime(n: int) -> float:
    """Return ``log(P(n))``, the natural log of the n-th prime.

    This is the hashing ingredient used by Algorithm 2 (Palette-WL).
    """
    return math.log(nth_prime(n))


def is_prime(value: int) -> bool:
    """Primality test backed by the shared cache (exact for any value)."""
    if value < 2:
        return False
    _extend_cache(12)
    while _PRIME_CACHE[-1] < value:
        _extend_cache(len(_PRIME_CACHE) * 2)
    idx = bisect_right(_PRIME_CACHE, value)
    return idx > 0 and _PRIME_CACHE[idx - 1] == value

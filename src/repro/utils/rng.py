"""Seeded random-number-generator helpers.

Every stochastic component in the library (dataset generators, negative
sampling, model initialisation) accepts either a seed or a ready
``numpy.random.Generator``; this module provides the single conversion
point so behaviour is reproducible end to end.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np

#: Anything a stochastic component accepts as its randomness source:
#: ``None`` (fresh entropy), an integer seed, or a ready generator.
RngLike: TypeAlias = "int | np.random.Generator | None"


def ensure_rng(seed: RngLike) -> np.random.Generator:
    """Coerce ``seed`` into a ``numpy.random.Generator``.

    Args:
        seed: ``None`` (fresh entropy), an integer seed, or an existing
            generator (returned unchanged so callers can share a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent generators from one seed.

    Useful when an experiment needs decoupled streams (e.g. dataset
    generation vs. negative sampling) that stay stable when one consumer
    changes how many draws it makes.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    root = ensure_rng(seed)
    seed_seq = getattr(root.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
    return [np.random.default_rng(int(root.integers(0, 2**63))) for _ in range(count)]

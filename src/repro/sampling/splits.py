"""The paper's evaluation split (Sec. VI-C2).

Protocol: choose the last timestamp ``l_t`` of the dynamic network as the
present time; node pairs that create a link at ``l_t`` are the *positive*
samples (70% train / 30% test); an equal number of *fake links* —
uniformly random node pairs with no link at ``l_t`` — are the negatives.
Every method observes only the history ``G_[first, l_t)``.

By default negatives are also required to have no *historical* link,
making the task "which genuinely new pairs connect next" rather than
"separate pairs with history from pairs without"; pass
``exclude_history_negatives=False`` for the laxer reading.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

import numpy as np

from repro.graph.temporal import DynamicNetwork
from repro.sampling.negatives import sample_negative_pairs
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable
Pair = tuple[Node, Node]


@dataclass
class LinkPredictionTask:
    """One realised evaluation split.

    Attributes:
        history: the observed network ``G_[first, present_time)``.
        present_time: the prediction timestamp ``l_t``.
        train_pairs / train_labels: training node pairs and 0/1 labels.
        test_pairs / test_labels: held-out pairs and labels.
    """

    history: DynamicNetwork
    present_time: float
    train_pairs: list[Pair]
    train_labels: np.ndarray
    test_pairs: list[Pair]
    test_labels: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.train_pairs) != len(self.train_labels):
            raise ValueError("train pairs/labels must align")
        if len(self.test_pairs) != len(self.test_labels):
            raise ValueError("test pairs/labels must align")

    def summary(self) -> dict:
        """Sample counts, for logging and the benchmark harness."""
        return {
            "present_time": self.present_time,
            "train_total": len(self.train_pairs),
            "train_positive": int(self.train_labels.sum()),
            "test_total": len(self.test_pairs),
            "test_positive": int(self.test_labels.sum()),
            "history_nodes": self.history.number_of_nodes(),
            "history_links": self.history.number_of_links(),
        }


def build_link_prediction_task(
    network: DynamicNetwork,
    *,
    train_fraction: float = 0.7,
    negative_ratio: float = 1.0,
    exclude_history_negatives: bool = True,
    negative_strategy: "str | None" = None,
    max_positives: "int | None" = None,
    seed: RngLike = 0,
) -> LinkPredictionTask:
    """Build the Sec. VI-C2 split from a full dynamic network.

    Args:
        network: the complete network (history + the final timestamp).
        train_fraction: share of positive pairs used for training (paper:
            0.7).
        negative_ratio: negatives per positive in each split (paper: 1.0).
        exclude_history_negatives: also forbid negatives that had
            historical links (see module docstring).
        negative_strategy: overrides ``exclude_history_negatives`` when
            given — one of :data:`repro.sampling.negatives.STRATEGIES`
            (``"uniform"``, ``"no_history"``, ``"two_hop"``); the
            ``"two_hop"`` setting yields *hard* negatives that share a
            neighbour with each other in the observed history.
        max_positives: subsample the positive pairs to at most this many
            (keeps the full benchmark harness fast on dense datasets);
            ``None`` keeps all, the faithful protocol.
        seed: RNG seed for the split and the negative sampling.

    Raises:
        ValueError: if the network has no links, or fewer than two
            distinct positive pairs emerge at the last timestamp.
    """
    if network.number_of_links() == 0:
        raise ValueError("cannot build a task from an empty network")
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if negative_ratio <= 0:
        raise ValueError(f"negative_ratio must be > 0, got {negative_ratio}")
    if negative_strategy is None:
        negative_strategy = (
            "no_history" if exclude_history_negatives else "uniform"
        )

    rng = ensure_rng(seed)
    present_time = network.last_timestamp()
    history = network.slice(network.first_timestamp(), present_time)

    positives = _positive_pairs(network, present_time)
    if len(positives) < 2:
        raise ValueError(
            f"only {len(positives)} positive pair(s) at the last timestamp; "
            "need at least 2 to split"
        )
    rng.shuffle(positives)
    if max_positives is not None and len(positives) > max_positives:
        positives = positives[:max_positives]

    n_train = max(1, int(round(len(positives) * train_fraction)))
    n_train = min(n_train, len(positives) - 1)  # both splits stay non-empty
    train_pos = positives[:n_train]
    test_pos = positives[n_train:]

    forbidden = {frozenset((u, v)) for u, v in positives}
    n_train_neg = max(1, int(round(len(train_pos) * negative_ratio)))
    n_test_neg = max(1, int(round(len(test_pos) * negative_ratio)))
    negatives = sample_negative_pairs(
        network,
        history,
        n_train_neg + n_test_neg,
        forbidden,
        strategy=negative_strategy,
        seed=rng,
    )
    train_neg = negatives[:n_train_neg]
    test_neg = negatives[n_train_neg:]

    train_pairs = list(train_pos) + list(train_neg)
    train_labels = np.array([1] * len(train_pos) + [0] * len(train_neg))
    test_pairs = list(test_pos) + list(test_neg)
    test_labels = np.array([1] * len(test_pos) + [0] * len(test_neg))

    order = rng.permutation(len(train_pairs))
    train_pairs = [train_pairs[i] for i in order]
    train_labels = train_labels[order]
    order = rng.permutation(len(test_pairs))
    test_pairs = [test_pairs[i] for i in order]
    test_labels = test_labels[order]

    return LinkPredictionTask(
        history=history,
        present_time=present_time,
        train_pairs=train_pairs,
        train_labels=train_labels,
        test_pairs=test_pairs,
        test_labels=test_labels,
        metadata={
            "train_fraction": train_fraction,
            "negative_ratio": negative_ratio,
            "exclude_history_negatives": exclude_history_negatives,
            "negative_strategy": negative_strategy,
        },
    )


def _positive_pairs(network: DynamicNetwork, present_time: float) -> list[Pair]:
    """Distinct node pairs with at least one link at the last timestamp."""
    seen: set[tuple] = set()
    out: list[Pair] = []
    for u, v, ts in network.edges():
        if ts == present_time:
            key = _key(u, v)
            if key not in seen:
                seen.add(key)
                out.append((u, v))
    return out


def _key(u: Node, v: Node) -> tuple:
    """Canonical unordered pair key."""
    return (u, v) if repr(u) <= repr(v) else (v, u)

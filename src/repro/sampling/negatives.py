"""Negative-sampling strategies for link-prediction evaluation.

The paper samples fake links uniformly at random (Sec. VI-C2), which on
sparse networks produces mostly *easy* negatives — node pairs that are
far apart and trivially rejected by any method.  Link-prediction
evaluations are known to be sensitive to this choice, so the library
offers three strategies:

* ``"uniform"`` — any pair without a link at the prediction time (the
  paper's protocol, literally).
* ``"no_history"`` — additionally exclude pairs with *any* historical
  link; the split then asks "which genuinely new pairs connect next"
  (the library default; see :mod:`repro.sampling.splits`).
* ``"two_hop"`` — *hard* negatives: pairs at distance exactly 2 in the
  history's static projection (they share a neighbour but still do not
  link).  Heuristics built on common neighbours lose most of their
  signal here; subgraph features must rely on finer structure.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.graph.temporal import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable
Pair = tuple[Node, Node]

STRATEGIES = ("uniform", "no_history", "two_hop")


def sample_negative_pairs(
    network: DynamicNetwork,
    history: DynamicNetwork,
    count: int,
    forbidden: "set[frozenset]",
    *,
    strategy: str = "no_history",
    seed: RngLike = 0,
) -> list[Pair]:
    """Sample ``count`` fake links under the chosen strategy.

    Args:
        network: the full network (used to forbid prediction-time links).
        history: the observed history ``G_[first, l_t)``.
        count: negatives to produce.
        forbidden: unordered pair keys that may never be sampled (the
            positives).
        strategy: one of :data:`STRATEGIES`.
        seed: RNG.

    Raises:
        ValueError: on unknown strategy, or when the strategy cannot
            yield ``count`` distinct pairs.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = ensure_rng(seed)
    if strategy == "two_hop":
        return _two_hop_negatives(network, history, count, forbidden, rng)
    return _random_negatives(
        network,
        count,
        forbidden,
        exclude_history=(strategy == "no_history"),
        rng=rng,
    )


def _random_negatives(
    network: DynamicNetwork,
    count: int,
    forbidden: "set[frozenset]",
    *,
    exclude_history: bool,
    rng: np.random.Generator,
) -> list[Pair]:
    nodes = network.nodes
    n = len(nodes)
    max_pairs = n * (n - 1) // 2
    if count > max_pairs - len(forbidden):
        raise ValueError(
            f"cannot sample {count} negatives from {n} nodes "
            f"({len(forbidden)} pairs forbidden)"
        )
    out: list[Pair] = []
    used = set(forbidden)
    attempts = 0
    limit = max(10_000, 200 * count)
    while len(out) < count:
        attempts += 1
        if attempts > limit:
            raise ValueError(
                "negative sampling did not converge; relax the strategy"
            )
        i, j = rng.integers(n), rng.integers(n)
        if i == j:
            continue
        u, v = nodes[int(i)], nodes[int(j)]
        key = frozenset((u, v))
        if key in used:
            continue
        if exclude_history and network.has_edge(u, v):
            continue
        used.add(key)
        out.append((u, v))
    return out


def _two_hop_negatives(
    network: DynamicNetwork,
    history: DynamicNetwork,
    count: int,
    forbidden: "set[frozenset]",
    rng: np.random.Generator,
) -> list[Pair]:
    """Enumerate distance-2 non-adjacent pairs in the history, sample."""
    graph = history.static_projection()
    candidates: list[Pair] = []
    seen: set[frozenset] = set()
    for z in graph.nodes:
        neighbours = list(graph.neighbor_view(z))
        for i in range(len(neighbours)):
            u = neighbours[i]
            row_u = graph.neighbor_view(u)
            for j in range(i + 1, len(neighbours)):
                v = neighbours[j]
                if v in row_u:
                    continue  # adjacent in history — not a negative
                key = frozenset((u, v))
                if key in seen or key in forbidden:
                    continue
                if network.has_edge(u, v):
                    continue  # links at some time (incl. prediction time)
                seen.add(key)
                candidates.append((u, v))
    if len(candidates) < count:
        raise ValueError(
            f"only {len(candidates)} two-hop negatives exist, need {count}"
        )
    chosen = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in chosen]

"""Train/test construction for the link-prediction task (Sec. VI-C2)."""

from repro.sampling.negatives import STRATEGIES, sample_negative_pairs
from repro.sampling.splits import LinkPredictionTask, build_link_prediction_task
from repro.sampling.temporal_cv import (
    CrossValidationResult,
    TemporalFolds,
    build_temporal_folds,
    cross_validate_method,
)

__all__ = [
    "LinkPredictionTask",
    "build_link_prediction_task",
    "STRATEGIES",
    "sample_negative_pairs",
    "TemporalFolds",
    "build_temporal_folds",
    "CrossValidationResult",
    "cross_validate_method",
]

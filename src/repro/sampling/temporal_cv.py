"""Temporal cross-validation: evaluating at several prediction times.

The paper evaluates at a single prediction time (the last timestamp),
which gives one point estimate per method.  A natural strengthening is a
*rolling-origin* evaluation: slide the prediction time over the last few
timestamps, rebuild the Sec. VI-C2 split at each, and aggregate — giving
mean ± std instead of a single number, and exercising the methods on
histories of different lengths.

``G_[first, t)`` is the observed history for prediction time ``t``; pairs
linking at exactly ``t`` are the positives.  Folds whose timestamp has
too few positive pairs are skipped (reported in the result).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.temporal import DynamicNetwork
from repro.sampling.splits import LinkPredictionTask, build_link_prediction_task


@dataclass
class TemporalFolds:
    """The realised folds of one rolling-origin evaluation."""

    tasks: list[LinkPredictionTask]
    prediction_times: list[float]
    skipped_times: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)


def build_temporal_folds(
    network: DynamicNetwork,
    *,
    n_folds: int = 3,
    min_positives: int = 10,
    train_fraction: float = 0.7,
    negative_ratio: float = 1.0,
    exclude_history_negatives: bool = True,
    max_positives: "int | None" = None,
    seed: int = 0,
) -> TemporalFolds:
    """Build up to ``n_folds`` tasks at the last distinct timestamps.

    Fold ``i`` predicts the ``i``-th most recent timestamp from everything
    strictly before it.  Timestamps yielding fewer than ``min_positives``
    positive pairs are skipped and recorded.

    Raises:
        ValueError: if no usable fold exists.
    """
    if n_folds < 1:
        raise ValueError(f"n_folds must be >= 1, got {n_folds}")
    if min_positives < 2:
        raise ValueError(f"min_positives must be >= 2, got {min_positives}")

    stamps = sorted(network.timestamp_set(), reverse=True)
    first = network.first_timestamp()
    tasks: list[LinkPredictionTask] = []
    times: list[float] = []
    skipped: list[float] = []
    for offset, stamp in enumerate(stamps):
        if len(tasks) >= n_folds:
            break
        if stamp <= first:
            break
        window = network.slice(first, stamp + 0.5)  # history + fold stamp
        positives = {
            frozenset((u, v))
            for u, v, ts in window.edges()
            if ts == stamp
        }
        if len(positives) < min_positives:
            skipped.append(stamp)
            continue
        task = build_link_prediction_task(
            window,
            train_fraction=train_fraction,
            negative_ratio=negative_ratio,
            exclude_history_negatives=exclude_history_negatives,
            max_positives=max_positives,
            seed=seed + offset,
        )
        tasks.append(task)
        times.append(stamp)
    if not tasks:
        raise ValueError(
            f"no timestamp yields >= {min_positives} positive pairs"
        )
    return TemporalFolds(tasks=tasks, prediction_times=times, skipped_times=skipped)


@dataclass(frozen=True)
class CrossValidationResult:
    """Aggregated AUC/F1 over temporal folds for one method."""

    method: str
    auc_values: tuple[float, ...]
    f1_values: tuple[float, ...]

    @property
    def auc_mean(self) -> float:
        return float(np.mean(self.auc_values))

    @property
    def auc_std(self) -> float:
        return float(np.std(self.auc_values))

    @property
    def f1_mean(self) -> float:
        return float(np.mean(self.f1_values))

    @property
    def f1_std(self) -> float:
        return float(np.std(self.f1_values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.method}: AUC={self.auc_mean:.3f}±{self.auc_std:.3f} "
            f"F1={self.f1_mean:.3f}±{self.f1_std:.3f} "
            f"({len(self.auc_values)} folds)"
        )


def cross_validate_method(
    network: DynamicNetwork,
    method: str,
    *,
    config=None,
    n_folds: int = 3,
    min_positives: int = 10,
    seed: int = 0,
) -> CrossValidationResult:
    """Run one Table III method over rolling temporal folds.

    Args:
        network: the full dynamic network.
        method: a method name from the experiment registry.
        config: an :class:`~repro.experiments.config.ExperimentConfig`.
        n_folds / min_positives / seed: fold construction (see
            :func:`build_temporal_folds`).
    """
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import LinkPredictionExperiment

    config = config or ExperimentConfig()
    folds = build_temporal_folds(
        network,
        n_folds=n_folds,
        min_positives=min_positives,
        train_fraction=config.train_fraction,
        negative_ratio=config.negative_ratio,
        exclude_history_negatives=config.exclude_history_negatives,
        max_positives=config.max_positives,
        seed=seed,
    )
    aucs: list[float] = []
    f1s: list[float] = []
    for task in folds:
        experiment = LinkPredictionExperiment(task.history, config, task=task)
        result = experiment.run_method(method)
        aucs.append(result.auc)
        f1s.append(result.f1)
    return CrossValidationResult(
        method=method, auc_values=tuple(aucs), f1_values=tuple(f1s)
    )

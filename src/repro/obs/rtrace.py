"""Request-scoped tracing: causal trace identity over the span substrate.

:mod:`repro.obs.trace` answers "how long did stage X take, in aggregate";
it cannot answer "where did THIS request's 300 ms go".  This module adds
the missing identity layer: a :class:`TraceContext` — ``trace_id`` /
``span_id`` / ``parent_id`` — carried in a :mod:`contextvars` variable so
it survives asyncio task switches, and an :class:`rspan` context manager
that opens a regular :class:`~repro.obs.trace.span` *and* stamps the
resulting record with the request's identity.

Three propagation boundaries matter in the serving path, and each needs
an explicit hand-off because Python only copies context automatically at
``asyncio.create_task`` time:

* **queue hand-off** — the front-end worker task drains jobs enqueued by
  other tasks; each job carries its requester's context as a field and
  the batch adopts the first live member's context (recording every
  member's trace id, so the exporter can fan the batch back out into
  per-request flows);
* **executor boundary** — ``loop.run_in_executor`` does NOT propagate
  contextvars, so the synchronous scoring core accepts the context as an
  explicit ``rctx`` keyword (policed by lint rule R304);
* **process boundary** — pool chunk tasks carry :meth:`TraceContext.to_wire`
  tuples; the worker adopts them (:func:`activate`) so its spans ship
  home already stamped with the requesting trace's identity.

Identity generation is deterministic (pid + a locked counter — no RNG,
per lint R103): ids are unique per process and collision-free across the
pool because the pid is part of the id.

Everything here shares the trace module's no-op discipline: with span
recording off, :class:`rspan` degrades to a plain :class:`span` and the
record-enrichment provider is never consulted.

Usage::

    with rspan("serve.request", root=True) as rs:
        ...                      # every span below carries this trace_id
        ctx = current_context()  # ship across an explicit boundary
    # elsewhere (another thread/process):
    with rspan("serve.score", ctx=ctx):
        ...
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Iterator, Optional

from contextlib import contextmanager

from repro.obs import trace

__all__ = [
    "TraceContext",
    "TraceWire",
    "activate",
    "current_context",
    "current_wire",
    "new_trace",
    "rspan",
]

#: the picklable cross-boundary form: (trace_id, span_id, parent_id)
TraceWire = "tuple[str, str, str | None]"

_IDS = itertools.count(1)
_IDS_LOCK = threading.Lock()


def _next_id(prefix: str) -> str:
    """A process-unique identifier; pid-qualified so pool workers never
    collide with the parent (deterministic: no RNG, per lint R103)."""
    with _IDS_LOCK:
        serial = next(_IDS)
    return f"{prefix}{os.getpid():x}-{serial:06x}"


def _reinit_after_fork() -> None:
    """Forked children take a fresh lock (parent's may be mid-acquire);
    the counter itself is safe — child ids embed the child pid."""
    global _IDS_LOCK
    _IDS_LOCK = threading.Lock()


if hasattr(os, "register_at_fork"):  # absent on some platforms (Windows)
    os.register_at_fork(after_in_child=_reinit_after_fork)


@dataclass(frozen=True)
class TraceContext:
    """One request's position in its trace: ids only, no timing.

    ``trace_id`` names the whole request; ``span_id`` this node in the
    request's span tree; ``parent_id`` the enclosing node (``None`` at
    the root).  Frozen so a context captured at a boundary can never be
    mutated behind the captor's back.
    """

    trace_id: str
    span_id: str
    parent_id: "str | None" = None

    def child(self) -> "TraceContext":
        """A fresh child node under this one (same trace)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=_next_id("s"),
            parent_id=self.span_id,
        )

    def to_wire(self) -> "tuple[str, str, str | None]":
        """The picklable tuple form for queue/executor/process hand-off."""
        return (self.trace_id, self.span_id, self.parent_id)

    @classmethod
    def from_wire(
        cls, wire: "tuple[str, str, str | None] | None"
    ) -> "TraceContext | None":
        """Rebuild a context from :meth:`to_wire` output (None-safe)."""
        if wire is None:
            return None
        trace_id, span_id, parent_id = wire
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent_id)


def new_trace() -> TraceContext:
    """A fresh root context (new trace_id, root span node)."""
    return TraceContext(trace_id=_next_id("t"), span_id=_next_id("s"))


_CURRENT: "contextvars.ContextVar[TraceContext | None]" = contextvars.ContextVar(
    "repro_rtrace_context", default=None
)


def current_context() -> "TraceContext | None":
    """The active request context of this task/thread, or ``None``."""
    return _CURRENT.get()


def current_wire() -> "tuple[str, str, str | None] | None":
    """:meth:`TraceContext.to_wire` of the active context (None-safe)."""
    ctx = _CURRENT.get()
    return ctx.to_wire() if ctx is not None else None


@contextmanager
def activate(ctx: "TraceContext | None") -> Iterator[None]:
    """Adopt ``ctx`` as the active context for the ``with`` body.

    The explicit hand-off for boundaries contextvars do not cross on
    their own (executor threads, pool workers).  ``None`` is a no-op, so
    call sites can pass an optional context through unconditionally.
    """
    if ctx is None:
        yield
        return
    token = _CURRENT.set(ctx)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def _provide_record_context() -> "dict[str, Any] | None":
    """The trace-module enrichment hook: stamp plain spans with the
    active request identity (they become leaves under the enclosing
    request span; only :class:`rspan` nodes mint span ids of their own).
    """
    ctx = _CURRENT.get()
    if ctx is None:
        return None
    return {"trace_id": ctx.trace_id, "parent_span_id": ctx.span_id}


trace.set_context_provider(_provide_record_context)


class rspan:
    """A :class:`~repro.obs.trace.span` that is a node in a trace.

    On enter it resolves its context — an explicit ``ctx``, a fresh root
    (``root=True``), or a child of the caller's current context — makes
    that context current for the body (so nested plain spans and
    contextvar readers see it), and opens the underlying span whose
    record carries ``trace_id``/``span_id``/``parent_span_id`` as
    top-level keys.  With no resolvable context (and ``root=False``) it
    degrades to the plain span: offline paths stay identity-free.

    ``members`` records a list of *other* trace ids this span serves
    (the batch fan-in case) under the record key ``trace_ids``; the
    exporter treats the span as part of each member trace when emitting
    flow events.
    """

    __slots__ = ("_name", "_tags", "_ctx_arg", "_root", "_members", "_span", "_token", "ctx")

    def __init__(
        self,
        name: str,
        *,
        ctx: "TraceContext | None" = None,
        root: bool = False,
        members: "list[str] | None" = None,
        **tags: Any,
    ) -> None:
        self._name = name
        self._tags = tags
        self._ctx_arg = ctx
        self._root = root
        self._members = members
        self._span: "trace.span | None" = None
        self._token: "contextvars.Token[TraceContext | None] | None" = None
        #: the resolved context (set on enter; None when identity-free)
        self.ctx: "TraceContext | None" = None

    def __enter__(self) -> "rspan":
        inner = trace.span(self._name, **self._tags)
        if trace.enabled():
            parent = self._ctx_arg if self._ctx_arg is not None else _CURRENT.get()
            if parent is not None:
                self.ctx = parent.child()
            elif self._root:
                self.ctx = new_trace()
            if self.ctx is not None:
                self._token = _CURRENT.set(self.ctx)
                extra: "dict[str, Any]" = {
                    "trace_id": self.ctx.trace_id,
                    "span_id": self.ctx.span_id,
                    "parent_span_id": self.ctx.parent_id,
                }
                if self._members:
                    extra["trace_ids"] = list(self._members)
                inner.record_extra = extra
        self._span = inner
        inner.__enter__()
        return self

    def __exit__(
        self,
        exc_type: "type[BaseException] | None",
        exc: "BaseException | None",
        tb: "TracebackType | None",
    ) -> bool:
        span_obj, self._span = self._span, None
        if span_obj is not None:
            span_obj.__exit__(exc_type, exc, tb)
        token, self._token = self._token, None
        if token is not None:
            _CURRENT.reset(token)
        return False

    def annotate(self, **tags: Any) -> None:
        """Add tags discovered mid-span (hit counts, batch sizes, ...)."""
        span_obj = self._span
        if span_obj is not None and trace.enabled():
            span_obj.tags.update(tags)

    @property
    def trace_id(self) -> "str | None":
        """The resolved trace id (None when running identity-free)."""
        return self.ctx.trace_id if self.ctx is not None else None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"rspan({self._name!r}, ctx={self.ctx!r})"


# mypy-friendly alias used in signatures elsewhere
OptionalContext = Optional[TraceContext]

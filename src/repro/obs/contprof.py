"""Continuous sampling profiler for the serving path.

A :class:`ContinuousProfiler` arms ``signal.setitimer(ITIMER_PROF)`` at a
fixed rate (default **101 Hz** — prime, so the sampler never phase-locks
with 10 ms/100 Hz periodic work) and, on each ``SIGPROF``, walks
``sys._current_frames()`` to take one collapsed stack per live thread.
``ITIMER_PROF`` counts *CPU* time, not wall time, so an idle replay
frontend costs nothing and the overhead scales with actual work; the
paired benchmark (``benchmarks/bench_obs_overhead.py``) holds the budget
at < 2 % median.

Samples aggregate into **collapsed-stack** form — the ``flamegraph.pl``
/ speedscope input format, one line per unique stack::

    serve;MainThread;frontend.py:recommend;parallel.py:batch_extract 42

The leading frame is the current serving **phase** (from
:func:`repro.obs.live.current_phase`), then the thread name, then
outermost→innermost ``basename:function`` frames, so a flamegraph reads
stage → thread → code, and :func:`top_frames` can attribute samples by
serving stage for the ``repro report`` table.

Constraints baked in rather than documented away:

* signal handlers can only be installed from the **main thread** — the
  CLI starts the profiler before handing off to asyncio;
* ``setitimer``/``SIGPROF`` are POSIX-only — :func:`supported` gates
  both conditions and the profiler degrades to an explicit error, never
  a silent no-op with an empty output file;
* one profiler per process — the itimer is a process-wide singleton.
"""

from __future__ import annotations

import signal
import sys
import threading
import types
from collections import Counter
from typing import Any, Iterator, Mapping

from repro.obs.live import atomic_write_text, current_phase

__all__ = [
    "ContinuousProfiler",
    "DEFAULT_HZ",
    "parse_collapsed",
    "supported",
    "top_frames",
]

#: default sampling rate; prime to avoid phase-locking periodic work
DEFAULT_HZ = 101

#: frames from these runtime modules are noise at the stack tip
_SKIP_BASENAMES = frozenset({"contprof.py"})

_ACTIVE: "ContinuousProfiler | None" = None


def supported() -> bool:
    """Whether this platform+thread can host the profiler (POSIX
    itimers present AND we are on the main thread, the only thread
    allowed to install signal handlers)."""
    return (
        hasattr(signal, "setitimer")
        and hasattr(signal, "SIGPROF")
        and threading.current_thread() is threading.main_thread()
    )


class ContinuousProfiler:
    """Signal-timer sampling profiler producing collapsed stacks.

    Usage::

        prof = ContinuousProfiler(hz=101)
        prof.start()
        ...serve...
        prof.stop()
        prof.write_collapsed(path)
    """

    def __init__(self, hz: int = DEFAULT_HZ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive, got {hz}")
        self.hz = hz
        self.samples: "Counter[str]" = Counter()
        self.sample_count = 0
        self._running = False
        self._prev_handler: Any = None
        self._thread_names: "dict[int, str]" = {}
        # code object -> "basename:func" (or None when skipped); keyed
        # by the object itself so the entry pins it and the key can
        # never be recycled, keeping the handler allocation-light
        self._frame_text: "dict[types.CodeType, str | None]" = {}

    # ------------------------------------------------------------------
    def _handle(self, signum: int, frame: "types.FrameType | None") -> None:
        """SIGPROF handler: one collapsed stack per live thread.

        Runs in the main thread between bytecodes; keeps to dict/Counter
        lookups — frame strings are cached per code object and thread
        names refresh only when an unknown tid appears — so each tick
        stays in the low-microsecond range.
        """
        self.sample_count += 1
        phase = current_phase() or "idle"
        names = self._thread_names
        frame_text = self._frame_text
        for tid, top in sys._current_frames().items():
            parts: "list[str]" = []
            f: "types.FrameType | None" = top
            while f is not None:
                code = f.f_code
                try:
                    text = frame_text[code]
                except KeyError:
                    basename = code.co_filename.rsplit("/", 1)[-1]
                    text = (
                        None
                        if basename in _SKIP_BASENAMES
                        else f"{basename}:{code.co_name}"
                    )
                    frame_text[code] = text
                if text is not None:
                    parts.append(text)
                f = f.f_back
            if not parts:
                continue
            parts.reverse()
            thread_name = names.get(tid)
            if thread_name is None:
                for thread in threading.enumerate():
                    names[thread.ident or 0] = thread.name
                thread_name = names.get(tid, f"tid-{tid}")
            key = f"{phase};{thread_name};" + ";".join(parts)
            self.samples[key] += 1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the itimer; raises on unsupported platform/thread or if a
        profiler is already running in this process."""
        global _ACTIVE
        if self._running:
            raise RuntimeError("profiler already running")
        if _ACTIVE is not None:
            raise RuntimeError("another ContinuousProfiler is active in this process")
        if not supported():
            raise RuntimeError(
                "continuous profiling needs POSIX setitimer/SIGPROF and the "
                "main thread (signal handlers cannot be installed elsewhere)"
            )
        interval = 1.0 / self.hz
        self._prev_handler = signal.signal(signal.SIGPROF, self._handle)
        signal.setitimer(signal.ITIMER_PROF, interval, interval)
        self._running = True
        _ACTIVE = self

    def stop(self) -> None:
        """Disarm the itimer and restore the previous handler (idempotent)."""
        global _ACTIVE
        if not self._running:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
        if self._prev_handler is not None:
            signal.signal(signal.SIGPROF, self._prev_handler)
        else:
            signal.signal(signal.SIGPROF, signal.SIG_DFL)
        self._prev_handler = None
        self._running = False
        if _ACTIVE is self:
            _ACTIVE = None

    def __enter__(self) -> "ContinuousProfiler":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.stop()
        return False

    # ------------------------------------------------------------------
    def collapsed(self) -> str:
        """The collapsed-stack text: ``frame;frame;... count`` lines,
        sorted by stack for deterministic output."""
        lines = [f"{stack} {count}" for stack, count in sorted(self.samples.items())]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> None:
        """Atomically write :meth:`collapsed` (plus a header comment with
        rate and sample count) to ``path``."""
        header = (
            f"# repro continuous profile: {self.hz}Hz ITIMER_PROF, "
            f"{self.sample_count} ticks, {sum(self.samples.values())} stacks\n"
        )
        atomic_write_text(path, header + self.collapsed())

    def top_frames(self, n: int = 10) -> "list[tuple[str, int]]":
        """The ``n`` hottest stacks as ``(stack, samples)``."""
        return self.samples.most_common(n)


# ----------------------------------------------------------------------
# collapsed-file readers (used by `repro report --profile`)
# ----------------------------------------------------------------------
def parse_collapsed(text: str) -> "Counter[str]":
    """Parse collapsed-stack text back into stack -> sample counts.

    Tolerates header/comment lines (``#``) and blank lines; a line whose
    trailing field is not an integer is skipped rather than fatal, so a
    truncated profile still yields a partial table.
    """
    counts: "Counter[str]" = Counter()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        stack, _sep, count_text = line.rpartition(" ")
        if not stack:
            continue
        try:
            counts[stack] += int(count_text)
        except ValueError:
            continue
    return counts


def _leaf_frames(counts: "Mapping[str, int]") -> "Iterator[tuple[str, int]]":
    for stack, count in counts.items():
        leaf = stack.rsplit(";", 1)[-1]
        yield leaf, count


def top_frames(text: str, n: int = 10) -> "list[tuple[str, int]]":
    """Top-``n`` *leaf* frames (self-time attribution) from collapsed
    text — the shape the ``repro report`` flamegraph table renders."""
    totals: "Counter[str]" = Counter()
    for leaf, count in _leaf_frames(parse_collapsed(text)):
        totals[leaf] += count
    return totals.most_common(n)

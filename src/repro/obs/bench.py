"""Benchmark history store and the pairs/sec regression gate.

Three responsibilities:

* **Running** the dict-vs-csr extraction throughput benchmark
  (:func:`run_extraction_bench`) — the single-process comparison the CI
  bench smoke step executes.  The heavy ``repro.core`` imports happen
  lazily inside the function so importing this module stays cheap.
* **History**: every run can be appended as one JSON line to
  ``BENCH_history.jsonl`` (:func:`append_history`), stamped with the
  seed, the git SHA and a machine fingerprint, so the throughput
  trajectory across commits survives the latest-result overwrite of
  ``BENCH_extraction.json``.
* **Gating**: :func:`compare_results` diffs a current result against a
  committed baseline and flags any backend whose pairs/sec dropped by
  more than ``max_regression`` (a noise threshold, default 30%).  CI
  fails on a regression via ``repro bench --compare``.

Records are plain dicts; a history record wraps a result as
``{"schema", "recorded_at", "git_sha", "machine", "result"}``.
Comparison accepts either shape.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.obs.live import atomic_write_text, peak_rss_bytes

#: v2 added ``peak_rss_bytes`` to the record stamp and an optional
#: ``tag`` inside the result; v1 records remain readable (absent keys)
HISTORY_SCHEMA_VERSION = 2
DEFAULT_MAX_REGRESSION = 0.30
#: context fields that must match for a comparison to be apples-to-apples
_SCALE_FIELDS = ("nodes", "pairs", "k")


# ----------------------------------------------------------------------
# provenance stamps
# ----------------------------------------------------------------------
def machine_fingerprint() -> dict[str, Any]:
    """Describe the machine well enough to spot cross-host comparisons.

    The ``id`` is a stable 12-hex digest of the descriptive fields —
    two runs on the same host/interpreter produce the same id.
    """
    info: dict[str, Any] = {
        "hostname": platform.node(),
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 0,
    }
    blob = json.dumps(info, sort_keys=True).encode("utf-8")
    info["id"] = hashlib.sha256(blob).hexdigest()[:12]
    return info


def git_sha(cwd: "str | None" = None) -> "str | None":
    """The current commit (short SHA), or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


# ----------------------------------------------------------------------
# history store (JSON lines, append-only)
# ----------------------------------------------------------------------
def history_record(
    result: Mapping[str, Any], *, recorded_at: "float | None" = None
) -> dict[str, Any]:
    """Wrap a bench result with schema/provenance stamps.

    The stamp includes the recording process's lifetime peak RSS
    (``peak_rss_bytes``, 0.0 where unknowable) so the history tracks
    memory growth across commits alongside throughput.
    """
    return {
        "schema": HISTORY_SCHEMA_VERSION,
        "recorded_at": time.time() if recorded_at is None else recorded_at,
        "git_sha": git_sha(),
        "machine": machine_fingerprint(),
        "peak_rss_bytes": peak_rss_bytes(),
        "result": dict(result),
    }


def append_history(
    path: "str | Path",
    result: Mapping[str, Any],
    *,
    recorded_at: "float | None" = None,
) -> dict[str, Any]:
    """Append one stamped record to the JSONL history; returns it."""
    record = history_record(result, recorded_at=recorded_at)
    history_path = Path(path)
    history_path.parent.mkdir(parents=True, exist_ok=True)
    with open(history_path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def load_history(path: "str | Path") -> list[dict[str, Any]]:
    """All parseable records, oldest first.  Malformed lines are skipped

    (an interrupted append must not poison the whole trajectory).
    """
    history_path = Path(path)
    if not history_path.exists():
        return []
    records: list[dict[str, Any]] = []
    with open(history_path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                records.append(payload)
    return records


def _bare_result(payload: Mapping[str, Any]) -> Mapping[str, Any]:
    """Accept either a bench result or a history record wrapping one."""
    inner = payload.get("result")
    if isinstance(inner, Mapping):
        return inner
    return payload


# ----------------------------------------------------------------------
# regression gate
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendDelta:
    """Throughput of one backend, current vs baseline."""

    backend: str
    current_pps: float
    baseline_pps: float
    ratio: float
    regressed: bool


@dataclass(frozen=True)
class Comparison:
    """Outcome of a current-vs-baseline bench diff."""

    max_regression: float
    deltas: tuple[BackendDelta, ...]
    notes: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not any(d.regressed for d in self.deltas)

    def format(self) -> str:
        lines = [
            "bench comparison (max regression "
            f"{self.max_regression:.0%} of baseline pairs/sec)",
        ]
        for d in self.deltas:
            verdict = "REGRESSED" if d.regressed else "ok"
            lines.append(
                f"  {d.backend:>6}: {d.current_pps:10.2f} pairs/s vs "
                f"baseline {d.baseline_pps:10.2f}  "
                f"({d.ratio:6.2%} of baseline)  {verdict}"
            )
        lines.extend(f"  note: {note}" for note in self.notes)
        lines.append("PASS" if self.ok else "FAIL: throughput regression")
        return "\n".join(lines)


def compare_results(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> Comparison:
    """Flag backends whose pairs/sec fell below ``(1 - max_regression)``
    of the baseline.  Speedups never fail; only drops do.
    """
    cur = _bare_result(current)
    base = _bare_result(baseline)
    notes: list[str] = []
    for field in _SCALE_FIELDS:
        if field in cur and field in base and cur[field] != base[field]:
            notes.append(
                f"scale mismatch: {field} current={cur[field]!r} "
                f"baseline={base[field]!r} — comparison may be meaningless"
            )
    cur_machine = current.get("machine") if isinstance(current, Mapping) else None
    base_machine = baseline.get("machine") if isinstance(baseline, Mapping) else None
    if (
        isinstance(cur_machine, Mapping)
        and isinstance(base_machine, Mapping)
        and cur_machine.get("id") != base_machine.get("id")
    ):
        notes.append("different machines — treat ratios as indicative only")
    if cur.get("tag") != base.get("tag"):
        notes.append(
            f"tag mismatch: current={cur.get('tag')!r} "
            f"baseline={base.get('tag')!r} — these may be different "
            "experiment lines"
        )

    deltas: list[BackendDelta] = []
    cur_backends = cur.get("backends", {})
    base_backends = base.get("backends", {})
    for backend in sorted(base_backends):
        if backend not in cur_backends:
            notes.append(f"backend {backend!r} missing from current result")
            continue
        base_pps = float(base_backends[backend].get("pairs_per_second", 0.0))
        cur_pps = float(cur_backends[backend].get("pairs_per_second", 0.0))
        ratio = cur_pps / base_pps if base_pps > 0 else float("inf")
        regressed = base_pps > 0 and cur_pps < (1.0 - max_regression) * base_pps
        deltas.append(
            BackendDelta(
                backend=backend,
                current_pps=cur_pps,
                baseline_pps=base_pps,
                ratio=ratio,
                regressed=regressed,
            )
        )
    if not deltas:
        notes.append("no common backends — nothing compared")
    return Comparison(
        max_regression=max_regression, deltas=tuple(deltas), notes=tuple(notes)
    )


# ----------------------------------------------------------------------
# the benchmark itself (lazy core imports: keep `import repro.obs` cheap
# and avoid the repro.core -> repro.obs -> repro.core cycle)
# ----------------------------------------------------------------------
def synthetic_network(
    n_nodes: int, avg_degree: float = 4.0, n_ts: int = 100, seed: int = 0
) -> Any:
    """A random temporal multigraph at a chosen node count.

    Edges are uniform random pairs (about ``avg_degree / 2`` links per
    node) over ``n_ts`` distinct integer timestamps — enough collision
    density to exercise multi-links and duplicate stamps at scale.
    """
    from repro.graph.temporal import DynamicNetwork
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(seed)
    n_edges = int(n_nodes * avg_degree / 2)
    g = DynamicNetwork()
    endpoints = rng.integers(0, n_nodes, size=(n_edges, 2))
    stamps = rng.integers(1, n_ts + 1, size=n_edges)
    for (u, v), ts in zip(endpoints, stamps):
        if u != v:
            g.add_edge(int(u), int(v), float(ts))
    return g


def run_extraction_bench(
    n_nodes: int = 5000,
    n_pairs: int = 200,
    k: int = 10,
    seed: int = 0,
    out_path: "str | Path | None" = None,
    history_path: "str | Path | None" = None,
    tag: "str | None" = None,
    batch: bool = False,
    batch_pairs: "int | None" = None,
) -> dict[str, Any]:
    """Time single-process SSF extraction on both backends, same pairs.

    The csr timing INCLUDES the one-off snapshot freeze (built once per
    observed window, amortised over the batch — exactly how the runner
    uses it).  With ``batch=True`` a third ``batched`` section times ONE
    cold ``extract_batch`` call through the csr batched driver over
    ``batch_pairs`` pairs (default ``10 * n_pairs`` — the driver amortises
    per-batch setup across pairs, so a larger slab reflects its intended
    many-pair workload; the first ``n_pairs`` of the slab are the exact
    pairs the per-pair sections ran).  Batched rows are verified
    bit-identical against the dict reference (untimed) and fold into the
    top-level ``bit_identical``.  Writes the latest result to ``out_path``
    when given and appends a stamped record to ``history_path`` when
    given.  ``tag`` labels the result (and therefore its history record)
    so distinct experiment lines share one trajectory file without
    mixing.
    """
    import numpy as np

    from repro.core.feature import SSFConfig, SSFExtractor
    from repro.graph.csr import CSRSnapshot
    from repro.utils.rng import ensure_rng

    network = synthetic_network(n_nodes, seed=seed)
    rng = ensure_rng(seed + 1)
    nodes = network.nodes
    n_batch = max(n_pairs, batch_pairs if batch_pairs is not None else 10 * n_pairs)
    all_pairs: list[tuple[Any, Any]] = []
    while len(all_pairs) < (n_batch if batch else n_pairs):
        i, j = rng.integers(0, len(nodes), size=2)
        if i != j:
            all_pairs.append((nodes[int(i)], nodes[int(j)]))
    pairs = all_pairs[:n_pairs]
    config = SSFConfig(k=k)

    started = time.perf_counter()
    dict_extractor = SSFExtractor(network, config, backend="dict")
    dict_features = [dict_extractor.extract(a, b) for a, b in pairs]
    dict_seconds = time.perf_counter() - started

    started = time.perf_counter()
    snapshot = CSRSnapshot.from_dynamic(network)
    build_seconds = time.perf_counter() - started
    csr_extractor = SSFExtractor(snapshot, config)
    csr_features = [csr_extractor.extract(a, b) for a, b in pairs]
    csr_seconds = time.perf_counter() - started

    identical = all(
        np.array_equal(d, c) for d, c in zip(dict_features, csr_features)
    )
    result: dict[str, Any] = {
        "nodes": network.number_of_nodes(),
        "links": network.number_of_links(),
        "pairs": len(pairs),
        "k": k,
        "seed": seed,
        "bit_identical": identical,
        "backends": {
            "dict": {
                "seconds": round(dict_seconds, 4),
                "pairs_per_second": round(len(pairs) / dict_seconds, 2),
            },
            "csr": {
                "seconds": round(csr_seconds, 4),
                "snapshot_build_seconds": round(build_seconds, 4),
                "pairs_per_second": round(len(pairs) / csr_seconds, 2),
            },
        },
        "speedup": round(dict_seconds / csr_seconds, 2),
    }
    if batch:
        batch_extractor = SSFExtractor(snapshot, config)
        started = time.perf_counter()
        batched_matrix = batch_extractor.extract_batch(all_pairs)
        batched_seconds = time.perf_counter() - started
        batched_reference = np.stack(
            [dict_extractor.extract(a, b) for a, b in all_pairs]
        )
        batched_identical = bool(np.array_equal(batched_reference, batched_matrix))
        result["bit_identical"] = identical and batched_identical
        result["backends"]["batched"] = {
            "seconds": round(batched_seconds, 4),
            "pairs": len(all_pairs),
            "pairs_per_second": round(len(all_pairs) / batched_seconds, 2),
        }
    if tag is not None:
        result["tag"] = tag
    if out_path is not None:
        atomic_write_text(
            out_path, json.dumps(result, indent=1, sort_keys=True) + "\n"
        )
    if history_path is not None:
        append_history(history_path, result)
    return result

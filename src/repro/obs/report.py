"""Run reports: one document joining a run's observability artefacts.

A single experiment leaves several machine-readable trails — the
metrics-registry snapshot (``--metrics-out``), a checkpoint directory
(``--checkpoint-dir``), the benchmark latest-result JSON and the
``BENCH_history.jsonl`` trajectory.  ``repro report --metrics ...``
joins whichever of them exist into one run report, as Markdown for
humans and (``--json-out``) as JSON for dashboards:

* **stage breakdown** — per-stage time from the ``span.*`` histograms
  (count, p50/p95, total seconds, share of the summed span time; nested
  spans overlap, so shares are indicative, not a partition),
* **throughput** — pairs extracted, batch pairs/sec, pool shape,
  entry modes actually extracted and the inferred backend,
* **robustness** — retry / fallback / shm-degradation / resume
  counters and how many worker payloads were merged,
* **checkpoint** — manifest settings plus completed cells,
* **benchmark** — latest backend comparison and the history trajectory.

Every section is optional: the report only describes artefacts it was
given, and says so when given none.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.obs.bench import load_history

#: counters surfaced in the robustness section, in display order
_ROBUSTNESS_COUNTERS = (
    "robust.retries",
    "robust.fallbacks",
    "robust.shm_degradations",
    "robust.resumed_cells",
    "robust.resumed_features",
    "obs.worker_payloads",
    "obs.worker_payload_spans",
    "parallel.sequential_fallbacks",
)


def _load_json(path: "str | Path") -> Any:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _num(value: Any, default: float = 0.0) -> float:
    """NaN-scrubbed snapshots hold ``None`` where a float should be."""
    return float(value) if isinstance(value, (int, float)) else default


# ----------------------------------------------------------------------
# section builders (pure: loaded data in, plain dict out)
# ----------------------------------------------------------------------
def _stage_section(metrics: Mapping[str, Any]) -> list[dict[str, Any]]:
    histograms = metrics.get("histograms", {})
    spans = {
        name[len("span."):]: summary
        for name, summary in histograms.items()
        if name.startswith("span.")
    }
    total_seconds = sum(_num(s.get("sum")) for s in spans.values())
    rows = []
    for stage, summary in sorted(
        spans.items(), key=lambda item: -_num(item[1].get("sum"))
    ):
        seconds = _num(summary.get("sum"))
        rows.append(
            {
                "stage": stage,
                "count": int(_num(summary.get("count"))),
                "p50_ms": _num(summary.get("p50")) * 1e3,
                "p95_ms": _num(summary.get("p95")) * 1e3,
                "total_seconds": seconds,
                "share": seconds / total_seconds if total_seconds > 0 else 0.0,
                "estimator": summary.get("estimator", "exact"),
            }
        )
    return rows


def _entry_modes(metrics: Mapping[str, Any]) -> dict[str, int]:
    histograms = metrics.get("histograms", {})
    return {
        name[len("span.feature."):]: int(_num(summary.get("count")))
        for name, summary in sorted(histograms.items())
        if name.startswith("span.feature.")
    }


def _infer_backend(metrics: Mapping[str, Any]) -> str:
    """Best-effort: csr runs build snapshots; dict runs never do."""
    histograms = metrics.get("histograms", {})
    if "span.csr.build" in histograms:
        return "csr"
    if any(name.startswith("span.") for name in histograms):
        return "dict"
    return "unknown"


def _throughput_section(metrics: Mapping[str, Any]) -> dict[str, Any]:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    pps = histograms.get("parallel.pairs_per_second", {})
    return {
        "pairs_extracted": _num(counters.get("parallel.pairs_extracted")),
        "pool_runs": _num(counters.get("parallel.pool_runs")),
        "workers": _num(gauges.get("parallel.workers")),
        "chunksize": _num(gauges.get("parallel.chunksize")),
        "pairs_per_second_p50": _num(pps.get("p50")),
        "pairs_per_second_max": _num(pps.get("max")),
        "entry_modes": _entry_modes(metrics),
        "backend": _infer_backend(metrics),
    }


def _robustness_section(metrics: Mapping[str, Any]) -> dict[str, float]:
    counters = metrics.get("counters", {})
    return {name: _num(counters.get(name)) for name in _ROBUSTNESS_COUNTERS}


def checkpoint_summary(run_dir: "str | Path") -> dict[str, Any]:
    """Manifest + completed cells + feature files of a run directory.

    Reads the directory directly (no :class:`RunCheckpoint` import) so
    a report can be produced for a partial or crashed run as-is.
    """
    root = Path(run_dir)
    manifest: "dict[str, Any] | None" = None
    manifest_path = root / "manifest.json"
    if manifest_path.exists():
        try:
            loaded = json.loads(manifest_path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                manifest = loaded
        except (json.JSONDecodeError, OSError):
            manifest = None
    cells: list[dict[str, Any]] = []
    for path in sorted(root.glob("*/method_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            continue
        cells.append(
            {
                "dataset": payload.get("dataset"),
                "method": payload.get("method"),
                "auc": payload.get("auc"),
                "f1": payload.get("f1"),
            }
        )
    return {
        "run_dir": str(root),
        "manifest": manifest,
        "completed_cells": cells,
        "feature_files": len(list(root.glob("*/features_*.npz"))),
    }


def _bench_section(
    bench: "Mapping[str, Any] | None", history: "list[dict[str, Any]] | None"
) -> dict[str, Any]:
    section: dict[str, Any] = {}
    if bench is not None:
        result = bench.get("result", bench)
        section["latest"] = {
            "nodes": result.get("nodes"),
            "pairs": result.get("pairs"),
            "k": result.get("k"),
            "bit_identical": result.get("bit_identical"),
            "speedup": result.get("speedup"),
            "backends": {
                name: _num(payload.get("pairs_per_second"))
                for name, payload in result.get("backends", {}).items()
            },
        }
    if history:
        trajectory: dict[str, list[float]] = {}
        for record in history[-10:]:
            result = record.get("result", record)
            for name, payload in result.get("backends", {}).items():
                trajectory.setdefault(name, []).append(
                    _num(payload.get("pairs_per_second"))
                )
        section["history"] = {
            "records": len(history),
            "trajectory": trajectory,
        }
    return section


def build_report(
    *,
    metrics: "Mapping[str, Any] | None" = None,
    checkpoint: "Mapping[str, Any] | None" = None,
    bench: "Mapping[str, Any] | None" = None,
    history: "list[dict[str, Any]] | None" = None,
) -> dict[str, Any]:
    """Join the loaded artefacts into the JSON run report."""
    report: dict[str, Any] = {"sections": []}
    if metrics is not None:
        report["stages"] = _stage_section(metrics)
        report["throughput"] = _throughput_section(metrics)
        report["robustness"] = _robustness_section(metrics)
        report["sections"] += ["stages", "throughput", "robustness"]
    if checkpoint is not None:
        report["checkpoint"] = dict(checkpoint)
        report["sections"].append("checkpoint")
    bench_section = _bench_section(bench, history)
    if bench_section:
        report["bench"] = bench_section
        report["sections"].append("bench")
    return report


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------
def format_report(report: Mapping[str, Any]) -> str:
    lines: list[str] = ["# Run report", ""]
    if not report.get("sections"):
        lines.append(
            "No artefacts supplied — pass --metrics / --checkpoint / "
            "--bench / --bench-history."
        )
        return "\n".join(lines)

    if "stages" in report:
        lines += [
            "## Stage breakdown",
            "",
            "| stage | count | p50 (ms) | p95 (ms) | total (s) | share |",
            "|---|---:|---:|---:|---:|---:|",
        ]
        for row in report["stages"]:
            marker = "~" if row["estimator"] == "reservoir" else ""
            lines.append(
                f"| {row['stage']} | {row['count']} "
                f"| {marker}{row['p50_ms']:.3f} | {marker}{row['p95_ms']:.3f} "
                f"| {row['total_seconds']:.3f} | {row['share']:.1%} |"
            )
        lines += [
            "",
            "Shares are of the summed span time; nested spans overlap. "
            "`~` marks reservoir-estimated quantiles.",
            "",
        ]

    if "throughput" in report:
        t = report["throughput"]
        lines += ["## Throughput", ""]
        lines.append(f"- pairs extracted: {t['pairs_extracted']:.0f}")
        if t["pairs_per_second_p50"] > 0:
            lines.append(
                f"- batch throughput: p50 {t['pairs_per_second_p50']:.1f} "
                f"pairs/s (max {t['pairs_per_second_max']:.1f})"
            )
        if t["pool_runs"] > 0:
            lines.append(
                f"- pool runs: {t['pool_runs']:.0f} "
                f"({t['workers']:.0f} workers, chunksize {t['chunksize']:.0f})"
            )
        lines.append(f"- backend (inferred): {t['backend']}")
        if t["entry_modes"]:
            modes = ", ".join(
                f"{mode} ({count})" for mode, count in t["entry_modes"].items()
            )
            lines.append(f"- entry modes: {modes}")
        lines.append("")

    if "robustness" in report:
        nonzero = {k: v for k, v in report["robustness"].items() if v > 0}
        lines += ["## Robustness", ""]
        if nonzero:
            lines += [f"- {name}: {value:.0f}" for name, value in nonzero.items()]
        else:
            lines.append("- clean run: no retries, fallbacks or degradations")
        lines.append("")

    if "checkpoint" in report:
        ckpt = report["checkpoint"]
        cells = ckpt.get("completed_cells", [])
        lines += ["## Checkpoint", ""]
        lines.append(f"- run dir: `{ckpt.get('run_dir')}`")
        lines.append(
            f"- completed cells: {len(cells)} "
            f"(+{ckpt.get('feature_files', 0)} feature matrices)"
        )
        for cell in cells:
            auc = cell.get("auc")
            auc_text = f"{auc:.3f}" if isinstance(auc, (int, float)) else "?"
            lines.append(
                f"  - {cell.get('dataset')} / {cell.get('method')}: "
                f"AUC {auc_text}"
            )
        manifest = ckpt.get("manifest")
        if manifest:
            settings = ", ".join(
                f"{k}={v!r}" for k, v in sorted(manifest.items())
            )
            lines.append(f"- manifest: {settings}")
        lines.append("")

    if "bench" in report:
        bench = report["bench"]
        lines += ["## Benchmark", ""]
        latest = bench.get("latest")
        if latest:
            backends = ", ".join(
                f"{name} {pps:.1f} pairs/s"
                for name, pps in latest["backends"].items()
            )
            lines.append(
                f"- latest ({latest.get('nodes')} nodes, "
                f"{latest.get('pairs')} pairs, k={latest.get('k')}): {backends}"
            )
            lines.append(
                f"- csr speedup {latest.get('speedup')}x, "
                f"bit identical: {latest.get('bit_identical')}"
            )
        history = bench.get("history")
        if history:
            lines.append(f"- history: {history['records']} recorded runs")
            for name, values in history["trajectory"].items():
                shown = ", ".join(f"{v:.0f}" for v in values)
                lines.append(f"  - {name} pairs/s (last {len(values)}): {shown}")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def run_report(
    *,
    metrics_path: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    bench_path: "str | None" = None,
    history_path: "str | None" = None,
    json_out: "str | None" = None,
) -> str:
    """Load the named artefacts, render Markdown, optionally dump JSON."""
    metrics = _load_json(metrics_path) if metrics_path else None
    checkpoint = checkpoint_summary(checkpoint_dir) if checkpoint_dir else None
    bench = _load_json(bench_path) if bench_path else None
    history = load_history(history_path) if history_path else None
    report = build_report(
        metrics=metrics, checkpoint=checkpoint, bench=bench, history=history
    )
    if json_out:
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return format_report(report)

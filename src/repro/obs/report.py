"""Run reports: one document joining a run's observability artefacts.

A single experiment leaves several machine-readable trails — the
metrics-registry snapshot (``--metrics-out``), a checkpoint directory
(``--checkpoint-dir``), the benchmark latest-result JSON and the
``BENCH_history.jsonl`` trajectory.  ``repro report --metrics ...``
joins whichever of them exist into one run report, as Markdown for
humans and (``--json-out``) as JSON for dashboards:

* **stage breakdown** — per-stage time from the ``span.*`` histograms
  (count, p50/p95, total seconds, share of the summed span time; nested
  spans overlap, so shares are indicative, not a partition),
* **throughput** — pairs extracted, batch pairs/sec, pool shape,
  entry modes actually extracted and the inferred backend,
* **robustness** — retry / fallback / shm-degradation / resume
  counters, how many worker payloads were merged, and whether the
  span-record buffer overflowed (``obs.spans_dropped``),
* **memory** — the resource sampler's ``proc.*`` gauges: parent RSS /
  peak RSS / CPU / fds, per-worker RSS (fleet total) and per-stage
  tracemalloc peaks,
* **drift** — streaming quality: per-window AUC stats, the drift
  gauges and how many ``auc_drift`` alerts fired,
* **SLO** — each serving objective's window, burn rate and budget
  remaining, the burn alerts that fired, and the worst-request exemplar
  trace ids (present when the metrics snapshot embeds the ``slo`` key a
  ``repro serve --metrics-out`` run writes),
* **profile** — the top-10 hottest frames of a ``--continuous-profile``
  collapsed-stack file,
* **checkpoint** — manifest settings plus completed cells,
* **benchmark** — latest backend comparison and the history trajectory.

Every section is optional: the report only describes artefacts it was
given, and says so when given none.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.obs.bench import load_history
from repro.obs.live import atomic_write_text

#: counters surfaced in the robustness section, in display order
_ROBUSTNESS_COUNTERS = (
    "robust.retries",
    "robust.fallbacks",
    "robust.shm_degradations",
    "robust.resumed_cells",
    "robust.resumed_features",
    "obs.worker_payloads",
    "obs.worker_payload_spans",
    "obs.spans_dropped",
    "parallel.sequential_fallbacks",
)

#: gauge prefixes that feed the memory section
_WORKER_RSS_PREFIX = "proc.worker_rss_bytes.pid"
_TRACEMALLOC_PREFIX = "proc.tracemalloc_peak_bytes."


def _load_json(path: "str | Path") -> Any:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _load_json_or_none(path: "str | Path", notes: list[str], label: str) -> Any:
    """Partial-join load: a missing or corrupt artefact degrades to a note.

    A crashed run may leave any subset of its artefacts truncated or
    absent; the report still describes whatever else it was given.
    """
    try:
        loaded = _load_json(path)
    except (OSError, json.JSONDecodeError) as exc:
        notes.append(f"{label} unreadable ({path}): {exc}")
        return None
    if not isinstance(loaded, dict):
        notes.append(f"{label} malformed ({path}): expected a JSON object")
        return None
    return loaded


def _num(value: Any, default: float = 0.0) -> float:
    """NaN-scrubbed snapshots hold ``None`` where a float should be."""
    return float(value) if isinstance(value, (int, float)) else default


def _mib(n_bytes: float) -> str:
    """Human-readable mebibytes for the memory section."""
    return f"{n_bytes / (1024.0 * 1024.0):.1f} MiB"


# ----------------------------------------------------------------------
# section builders (pure: loaded data in, plain dict out)
# ----------------------------------------------------------------------
def _stage_section(metrics: Mapping[str, Any]) -> list[dict[str, Any]]:
    histograms = metrics.get("histograms", {})
    spans = {
        name[len("span."):]: summary
        for name, summary in histograms.items()
        if name.startswith("span.")
    }
    total_seconds = sum(_num(s.get("sum")) for s in spans.values())
    rows = []
    for stage, summary in sorted(
        spans.items(), key=lambda item: -_num(item[1].get("sum"))
    ):
        seconds = _num(summary.get("sum"))
        rows.append(
            {
                "stage": stage,
                "count": int(_num(summary.get("count"))),
                "p50_ms": _num(summary.get("p50")) * 1e3,
                "p95_ms": _num(summary.get("p95")) * 1e3,
                "total_seconds": seconds,
                "share": seconds / total_seconds if total_seconds > 0 else 0.0,
                "estimator": summary.get("estimator", "exact"),
            }
        )
    return rows


def _entry_modes(metrics: Mapping[str, Any]) -> dict[str, int]:
    histograms = metrics.get("histograms", {})
    return {
        name[len("span.feature."):]: int(_num(summary.get("count")))
        for name, summary in sorted(histograms.items())
        if name.startswith("span.feature.")
    }


def _infer_backend(metrics: Mapping[str, Any]) -> str:
    """Best-effort: csr runs build snapshots; dict runs never do."""
    histograms = metrics.get("histograms", {})
    if "span.csr.build" in histograms:
        return "csr"
    if any(name.startswith("span.") for name in histograms):
        return "dict"
    return "unknown"


def _throughput_section(metrics: Mapping[str, Any]) -> dict[str, Any]:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    pps = histograms.get("parallel.pairs_per_second", {})
    return {
        "pairs_extracted": _num(counters.get("parallel.pairs_extracted")),
        "pool_runs": _num(counters.get("parallel.pool_runs")),
        "workers": _num(gauges.get("parallel.workers")),
        "chunksize": _num(gauges.get("parallel.chunksize")),
        "pairs_per_second_p50": _num(pps.get("p50")),
        "pairs_per_second_max": _num(pps.get("max")),
        "entry_modes": _entry_modes(metrics),
        "backend": _infer_backend(metrics),
    }


def _robustness_section(metrics: Mapping[str, Any]) -> dict[str, float]:
    counters = metrics.get("counters", {})
    return {name: _num(counters.get(name)) for name in _ROBUSTNESS_COUNTERS}


def _memory_section(metrics: Mapping[str, Any]) -> dict[str, Any]:
    """RSS / fleet / tracemalloc view of the ``proc.*`` sampler gauges.

    Empty dict when the run carried no resource samples (sampler off).
    """
    gauges = metrics.get("gauges", {})
    workers = {
        name[len(_WORKER_RSS_PREFIX):]: _num(value)
        for name, value in sorted(gauges.items())
        if name.startswith(_WORKER_RSS_PREFIX)
    }
    tracemalloc_peaks = {
        name[len(_TRACEMALLOC_PREFIX):]: _num(value)
        for name, value in sorted(gauges.items())
        if name.startswith(_TRACEMALLOC_PREFIX)
    }
    parent_rss = _num(gauges.get("proc.rss_bytes"))
    if parent_rss <= 0 and not workers and not tracemalloc_peaks:
        return {}
    return {
        "parent_rss_bytes": parent_rss,
        "parent_peak_rss_bytes": _num(gauges.get("proc.peak_rss_bytes")),
        "cpu_seconds": _num(gauges.get("proc.cpu_seconds")),
        "open_fds": _num(gauges.get("proc.open_fds")),
        "worker_rss_bytes": workers,
        "fleet_rss_bytes": parent_rss + sum(workers.values()),
        "tracemalloc_peak_bytes": tracemalloc_peaks,
    }


def _drift_section(metrics: Mapping[str, Any]) -> dict[str, Any]:
    """Streaming-quality view: per-window AUC stats, drift gauges, alerts.

    Empty dict when the run scored no streaming windows.
    """
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    window_auc = metrics.get("histograms", {}).get("stream.window_auc", {})
    scored = _num(counters.get("stream.windows_scored"))
    if scored <= 0 and not window_auc:
        return {}
    return {
        "windows_scored": scored,
        "windows_skipped": _num(counters.get("stream.windows_skipped")),
        "window_auc_mean": _num(window_auc.get("mean")),
        "window_auc_min": _num(window_auc.get("min")),
        "window_auc_p50": _num(window_auc.get("p50")),
        "last_window_auc": _num(gauges.get("stream.last_window_auc")),
        "auc_drift": _num(gauges.get("stream.auc_drift")),
        "positive_rate": _num(gauges.get("stream.positive_rate")),
        "score_shift": _num(gauges.get("stream.score_shift")),
        "drift_alerts": _num(counters.get("stream.drift_alerts")),
    }


def checkpoint_summary(run_dir: "str | Path") -> dict[str, Any]:
    """Manifest + completed cells + feature files of a run directory.

    Reads the directory directly (no :class:`RunCheckpoint` import) so
    a report can be produced for a partial or crashed run as-is.
    """
    root = Path(run_dir)
    manifest: "dict[str, Any] | None" = None
    manifest_path = root / "manifest.json"
    if manifest_path.exists():
        try:
            loaded = json.loads(manifest_path.read_text(encoding="utf-8"))
            if isinstance(loaded, dict):
                manifest = loaded
        except (json.JSONDecodeError, OSError):
            manifest = None
    cells: list[dict[str, Any]] = []
    for path in sorted(root.glob("*/method_*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            continue
        cells.append(
            {
                "dataset": payload.get("dataset"),
                "method": payload.get("method"),
                "auc": payload.get("auc"),
                "f1": payload.get("f1"),
            }
        )
    return {
        "run_dir": str(root),
        "manifest": manifest,
        "completed_cells": cells,
        "feature_files": len(list(root.glob("*/features_*.npz"))),
    }


def _bench_section(
    bench: "Mapping[str, Any] | None", history: "list[dict[str, Any]] | None"
) -> dict[str, Any]:
    section: dict[str, Any] = {}
    if bench is not None:
        result = bench.get("result", bench)
        section["latest"] = {
            "nodes": result.get("nodes"),
            "pairs": result.get("pairs"),
            "k": result.get("k"),
            "bit_identical": result.get("bit_identical"),
            "speedup": result.get("speedup"),
            "backends": {
                name: _num(payload.get("pairs_per_second"))
                for name, payload in result.get("backends", {}).items()
            },
        }
    if history:
        trajectory: dict[str, list[float]] = {}
        peak_rss: list[float] = []
        for record in history[-10:]:
            result = record.get("result", record)
            tag = result.get("tag")
            for name, payload in result.get("backends", {}).items():
                # tagged runs are separate experiment lines: key them
                # apart so e.g. serving benches don't pollute the
                # extraction trajectory
                key = f"{name}[{tag}]" if tag else str(name)
                trajectory.setdefault(key, []).append(
                    _num(payload.get("pairs_per_second"))
                )
            rss = _num(record.get("peak_rss_bytes"))
            if rss > 0:
                peak_rss.append(rss)
        section["history"] = {
            "records": len(history),
            "trajectory": trajectory,
        }
        if peak_rss:
            section["history"]["peak_rss_bytes"] = peak_rss
    return section


def _slo_section(metrics: Mapping[str, Any]) -> dict[str, Any]:
    """The embedded ``slo`` status a serve run writes into its snapshot.

    Empty dict when the run carried no SLO engine.
    """
    slo = metrics.get("slo")
    if not isinstance(slo, dict) or not slo.get("objectives"):
        return {}
    objectives = []
    for status in slo["objectives"]:
        if not isinstance(status, dict):
            continue
        objectives.append(
            {
                "objective": status.get("objective"),
                "window_seconds": _num(status.get("window_seconds")),
                "events": int(_num(status.get("events"))),
                "bad_events": int(_num(status.get("bad_events"))),
                "burn_rate": _num(status.get("burn_rate")),
                "budget_remaining": _num(status.get("budget_remaining")),
                "worst_value": _num(status.get("worst_value")),
                "worst_trace_id": status.get("worst_trace_id"),
            }
        )
    return {
        "objectives": objectives,
        "alerts_fired": [
            alert for alert in slo.get("alerts_fired", []) if isinstance(alert, dict)
        ],
    }


def profile_section(text: str, top_n: int = 10) -> list[dict[str, Any]]:
    """Top leaf frames of a collapsed-stack profile, with sample shares."""
    from repro.obs.contprof import parse_collapsed, top_frames

    total = sum(parse_collapsed(text).values())
    return [
        {
            "frame": frame,
            "samples": count,
            "share": count / total if total > 0 else 0.0,
        }
        for frame, count in top_frames(text, top_n)
    ]


def build_report(
    *,
    metrics: "Mapping[str, Any] | None" = None,
    checkpoint: "Mapping[str, Any] | None" = None,
    bench: "Mapping[str, Any] | None" = None,
    history: "list[dict[str, Any]] | None" = None,
    profile_text: "str | None" = None,
) -> dict[str, Any]:
    """Join the loaded artefacts into the JSON run report."""
    report: dict[str, Any] = {"sections": []}
    if metrics is not None:
        report["stages"] = _stage_section(metrics)
        report["throughput"] = _throughput_section(metrics)
        report["robustness"] = _robustness_section(metrics)
        report["sections"] += ["stages", "throughput", "robustness"]
        memory = _memory_section(metrics)
        if memory:
            report["memory"] = memory
            report["sections"].append("memory")
        drift = _drift_section(metrics)
        if drift:
            report["drift"] = drift
            report["sections"].append("drift")
        slo = _slo_section(metrics)
        if slo:
            report["slo"] = slo
            report["sections"].append("slo")
    if profile_text is not None:
        report["profile"] = profile_section(profile_text)
        report["sections"].append("profile")
    if checkpoint is not None:
        report["checkpoint"] = dict(checkpoint)
        report["sections"].append("checkpoint")
    bench_section = _bench_section(bench, history)
    if bench_section:
        report["bench"] = bench_section
        report["sections"].append("bench")
    return report


# ----------------------------------------------------------------------
# markdown rendering
# ----------------------------------------------------------------------
def format_report(report: Mapping[str, Any]) -> str:
    lines: list[str] = ["# Run report", ""]
    for note in report.get("notes", []):
        lines.append(f"- WARNING: {note}")
    if report.get("notes"):
        lines.append("")
    if not report.get("sections"):
        if not report.get("notes"):
            lines.append(
                "No artefacts supplied — pass --metrics / --checkpoint / "
                "--bench / --bench-history / --profile."
            )
        return "\n".join(lines).rstrip() + "\n"

    if "stages" in report:
        lines += [
            "## Stage breakdown",
            "",
            "| stage | count | p50 (ms) | p95 (ms) | total (s) | share |",
            "|---|---:|---:|---:|---:|---:|",
        ]
        for row in report["stages"]:
            marker = "~" if row["estimator"] == "reservoir" else ""
            lines.append(
                f"| {row['stage']} | {row['count']} "
                f"| {marker}{row['p50_ms']:.3f} | {marker}{row['p95_ms']:.3f} "
                f"| {row['total_seconds']:.3f} | {row['share']:.1%} |"
            )
        lines += [
            "",
            "Shares are of the summed span time; nested spans overlap. "
            "`~` marks reservoir-estimated quantiles.",
            "",
        ]

    if "throughput" in report:
        t = report["throughput"]
        lines += ["## Throughput", ""]
        lines.append(f"- pairs extracted: {t['pairs_extracted']:.0f}")
        if t["pairs_per_second_p50"] > 0:
            lines.append(
                f"- batch throughput: p50 {t['pairs_per_second_p50']:.1f} "
                f"pairs/s (max {t['pairs_per_second_max']:.1f})"
            )
        if t["pool_runs"] > 0:
            lines.append(
                f"- pool runs: {t['pool_runs']:.0f} "
                f"({t['workers']:.0f} workers, chunksize {t['chunksize']:.0f})"
            )
        lines.append(f"- backend (inferred): {t['backend']}")
        if t["entry_modes"]:
            modes = ", ".join(
                f"{mode} ({count})" for mode, count in t["entry_modes"].items()
            )
            lines.append(f"- entry modes: {modes}")
        lines.append("")

    if "robustness" in report:
        nonzero = {k: v for k, v in report["robustness"].items() if v > 0}
        lines += ["## Robustness", ""]
        if nonzero:
            lines += [f"- {name}: {value:.0f}" for name, value in nonzero.items()]
        else:
            lines.append("- clean run: no retries, fallbacks or degradations")
        if nonzero.get("obs.spans_dropped", 0) > 0:
            lines.append(
                "- WARNING: the span-record buffer overflowed "
                f"({nonzero['obs.spans_dropped']:.0f} spans dropped) — "
                "the trace export is incomplete"
            )
        lines.append("")

    if "memory" in report:
        mem = report["memory"]
        lines += ["## Memory", ""]
        lines.append(f"- parent RSS: {_mib(mem['parent_rss_bytes'])}")
        if mem["parent_peak_rss_bytes"] > 0:
            lines.append(f"- parent peak RSS: {_mib(mem['parent_peak_rss_bytes'])}")
        if mem["cpu_seconds"] > 0:
            lines.append(f"- CPU time: {mem['cpu_seconds']:.1f} s")
        if mem["open_fds"] > 0:
            lines.append(f"- open fds: {mem['open_fds']:.0f}")
        if mem["worker_rss_bytes"]:
            lines.append(
                f"- fleet RSS (parent + {len(mem['worker_rss_bytes'])} "
                f"workers): {_mib(mem['fleet_rss_bytes'])}"
            )
            for pid, rss in mem["worker_rss_bytes"].items():
                lines.append(f"  - worker pid {pid}: {_mib(rss)}")
        for stage, peak in mem["tracemalloc_peak_bytes"].items():
            lines.append(f"- tracemalloc peak [{stage}]: {_mib(peak)}")
        lines.append("")

    if "drift" in report:
        drift = report["drift"]
        lines += ["## Streaming drift", ""]
        lines.append(
            f"- windows: {drift['windows_scored']:.0f} scored, "
            f"{drift['windows_skipped']:.0f} skipped"
        )
        lines.append(
            f"- window AUC: mean {drift['window_auc_mean']:.3f}, "
            f"p50 {drift['window_auc_p50']:.3f}, "
            f"min {drift['window_auc_min']:.3f}, "
            f"last {drift['last_window_auc']:.3f}"
        )
        lines.append(
            f"- drift gauges: auc_drift {drift['auc_drift']:+.3f}, "
            f"score_shift {drift['score_shift']:+.3f}, "
            f"positive_rate {drift['positive_rate']:.2f}"
        )
        if drift["drift_alerts"] > 0:
            lines.append(
                f"- ALERTS: {drift['drift_alerts']:.0f} drift-threshold "
                "crossings (see obs.alert log records)"
            )
        else:
            lines.append("- no drift alerts")
        lines.append("")

    if "slo" in report:
        slo = report["slo"]
        lines += [
            "## SLO",
            "",
            "| objective | window | events | bad | burn rate | budget left "
            "| worst trace |",
            "|---|---:|---:|---:|---:|---:|---|",
        ]
        for status in slo["objectives"]:
            window_s = status["window_seconds"]
            window = (
                f"{window_s / 60.0:g}m" if window_s < 3600 else f"{window_s / 3600.0:g}h"
            )
            worst = status.get("worst_trace_id") or "-"
            lines.append(
                f"| {status['objective']} | {window} | {status['events']} "
                f"| {status['bad_events']} | {status['burn_rate']:.2f}x "
                f"| {status['budget_remaining']:.1%} | `{worst}` |"
            )
        lines.append("")
        alerts = slo.get("alerts_fired", [])
        if alerts:
            lines.append(f"- ALERTS: {len(alerts)} burn-rate page(s) fired:")
            for alert in alerts:
                lines.append(
                    f"  - {alert.get('kind')}: {alert.get('objective')} "
                    f"(short {_num(alert.get('short_burn_rate')):.1f}x / "
                    f"long {_num(alert.get('long_burn_rate')):.1f}x, "
                    f"threshold {_num(alert.get('threshold')):.1f}x)"
                )
        else:
            lines.append("- no burn-rate alerts fired")
        lines.append("")

    if "profile" in report:
        lines += [
            "## Continuous profile — top frames",
            "",
            "| frame | samples | share |",
            "|---|---:|---:|",
        ]
        for row in report["profile"]:
            lines.append(
                f"| `{row['frame']}` | {row['samples']} | {row['share']:.1%} |"
            )
        lines += [
            "",
            "Shares are of all collapsed-stack samples (leaf-frame "
            "self time at 101Hz of CPU time).",
            "",
        ]

    if "checkpoint" in report:
        ckpt = report["checkpoint"]
        cells = ckpt.get("completed_cells", [])
        lines += ["## Checkpoint", ""]
        lines.append(f"- run dir: `{ckpt.get('run_dir')}`")
        lines.append(
            f"- completed cells: {len(cells)} "
            f"(+{ckpt.get('feature_files', 0)} feature matrices)"
        )
        for cell in cells:
            auc = cell.get("auc")
            auc_text = f"{auc:.3f}" if isinstance(auc, (int, float)) else "?"
            lines.append(
                f"  - {cell.get('dataset')} / {cell.get('method')}: "
                f"AUC {auc_text}"
            )
        manifest = ckpt.get("manifest")
        if manifest:
            settings = ", ".join(
                f"{k}={v!r}" for k, v in sorted(manifest.items())
            )
            lines.append(f"- manifest: {settings}")
        lines.append("")

    if "bench" in report:
        bench = report["bench"]
        lines += ["## Benchmark", ""]
        latest = bench.get("latest")
        if latest:
            backends = ", ".join(
                f"{name} {pps:.1f} pairs/s"
                for name, pps in latest["backends"].items()
            )
            lines.append(
                f"- latest ({latest.get('nodes')} nodes, "
                f"{latest.get('pairs')} pairs, k={latest.get('k')}): {backends}"
            )
            lines.append(
                f"- csr speedup {latest.get('speedup')}x, "
                f"bit identical: {latest.get('bit_identical')}"
            )
        history = bench.get("history")
        if history:
            lines.append(f"- history: {history['records']} recorded runs")
            for name, values in history["trajectory"].items():
                shown = ", ".join(f"{v:.0f}" for v in values)
                lines.append(f"  - {name} pairs/s (last {len(values)}): {shown}")
            peaks = history.get("peak_rss_bytes")
            if peaks:
                shown = ", ".join(_mib(v) for v in peaks)
                lines.append(f"  - peak RSS (last {len(peaks)}): {shown}")
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"


def run_report(
    *,
    metrics_path: "str | None" = None,
    checkpoint_dir: "str | None" = None,
    bench_path: "str | None" = None,
    history_path: "str | None" = None,
    profile_path: "str | None" = None,
    json_out: "str | None" = None,
) -> str:
    """Load the named artefacts, render Markdown, optionally dump JSON.

    The join is partial: a missing or corrupt artefact becomes a note in
    the report instead of an exception, so one truncated file from a
    crashed run never hides the artefacts that did survive.
    """
    notes: list[str] = []
    metrics = (
        _load_json_or_none(metrics_path, notes, "metrics") if metrics_path else None
    )
    checkpoint = checkpoint_summary(checkpoint_dir) if checkpoint_dir else None
    bench = _load_json_or_none(bench_path, notes, "bench") if bench_path else None
    history = load_history(history_path) if history_path else None
    profile_text: "str | None" = None
    if profile_path:
        try:
            profile_text = Path(profile_path).read_text(encoding="utf-8")
        except OSError as exc:
            notes.append(f"profile unreadable ({profile_path}): {exc}")
    report = build_report(
        metrics=metrics,
        checkpoint=checkpoint,
        bench=bench,
        history=history,
        profile_text=profile_text,
    )
    if notes:
        report["notes"] = notes
    if json_out:
        atomic_write_text(
            json_out, json.dumps(report, indent=1, sort_keys=True) + "\n"
        )
    return format_report(report)

"""Lightweight span tracing for the extraction pipeline.

A :class:`span` marks one timed region — an extraction stage, a batch, a
streaming window.  On exit it feeds its wall time into the default
metrics registry as the histogram ``span.<name>`` (seconds), so p50/p95
per-stage timings fall out of the same export path as every other
metric.  Spans nest: each span knows its slash-joined ``path`` from the
outermost enclosing span and inherits (then may override) its parent's
tags, giving call-tree context without a heavyweight tracing dependency.

The whole module is built around a **no-op fast path**: tracing is
disabled by default and every ``span.__enter__`` starts with a single
module-global flag check.  When disabled, no clock is read, no thread
local is touched and no registry entry is created, so instrumenting the
per-link hot path costs well under a microsecond per span and tier-1 /
benchmark timings are unaffected.  :func:`enable` flips everything on;
the CLI does so for ``repro profile`` and whenever ``--metrics-out`` is
requested.

Hot-path helpers :func:`observe`, :func:`incr` and :func:`set_gauge`
apply the same gate to plain metric writes, so instrumentation points in
inner loops stay free when observability is off.

Usage::

    with span("structure_combination", k=10):
        ...

    @span("palette_wl")
    def order(...):
        ...
"""

from __future__ import annotations

import functools
import threading
import time

from repro.obs.metrics import get_registry

#: module-global observability switch — the single check on the fast path
_ENABLED = False

_local = threading.local()


def enabled() -> bool:
    """Whether span tracing / gated metrics are currently recording."""
    return _ENABLED


def enable() -> None:
    """Turn observability on (spans time themselves, gated metrics record)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Return to the zero-overhead default."""
    global _ENABLED
    _ENABLED = False


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_span() -> "span | None":
    """The innermost active span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


class span:
    """Context manager *and* decorator timing one named region.

    Attributes (meaningful only while/after an *enabled* run):
        name: the stage name; feeds histogram ``span.<name>``.
        tags: own tags merged over the parent span's tags.
        path: slash-joined names from the outermost span, e.g.
            ``"feature_extract/palette_wl"``.
        duration: wall seconds, set on exit.
    """

    __slots__ = ("name", "_own_tags", "tags", "path", "duration", "_start", "_active")

    def __init__(self, name: str, **tags) -> None:
        self.name = name
        self._own_tags = tags
        self.tags = tags
        self.path = name
        self.duration: "float | None" = None
        self._start = 0.0
        self._active = False

    def __enter__(self) -> "span":
        if not _ENABLED:
            return self
        stack = _stack()
        parent = stack[-1] if stack else None
        if parent is not None:
            self.path = f"{parent.path}/{self.name}"
            self.tags = {**parent.tags, **self._own_tags}
        else:
            self.path = self.name
            self.tags = dict(self._own_tags)
        stack.append(self)
        self._active = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        self.duration = time.perf_counter() - self._start
        self._active = False
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        get_registry().histogram(f"span.{self.name}").observe(self.duration)
        return False

    def __call__(self, func):
        """Decorator form: each call runs inside a fresh span."""

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with span(self.name, **self._own_tags):
                return func(*args, **kwargs)

        return wrapper

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self._active else "idle"
        return f"span({self.name!r}, {state}, tags={self.tags})"


# ----------------------------------------------------------------------
# gated hot-path metric helpers
# ----------------------------------------------------------------------
def observe(name: str, value: float) -> None:
    """Record a histogram observation — only when observability is on."""
    if _ENABLED:
        get_registry().histogram(name).observe(value)


def incr(name: str, amount: float = 1.0) -> None:
    """Bump a counter — only when observability is on."""
    if _ENABLED:
        get_registry().counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge — only when observability is on."""
    if _ENABLED:
        get_registry().gauge(name).set(value)

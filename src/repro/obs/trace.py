"""Lightweight span tracing for the extraction pipeline.

A :class:`span` marks one timed region — an extraction stage, a batch, a
streaming window.  On exit it feeds its wall time into the default
metrics registry as the histogram ``span.<name>`` (seconds), so p50/p95/p99
per-stage timings fall out of the same export path as every other
metric.  Spans nest: each span knows its slash-joined ``path`` from the
outermost enclosing span and inherits (then may override) its parent's
tags, giving call-tree context without a heavyweight tracing dependency.

The whole module is built around a **no-op fast path**: tracing is
disabled by default and every ``span.__enter__`` starts with a single
module-global flag check.  When disabled, no clock is read, no thread
local is touched and no registry entry is created, so instrumenting the
per-link hot path costs well under a microsecond per span and tier-1 /
benchmark timings are unaffected.  :func:`enable` flips everything on;
the CLI does so for ``repro profile`` and whenever ``--metrics-out`` is
requested.

Hot-path helpers :func:`observe`, :func:`incr` and :func:`set_gauge`
apply the same gate to plain metric writes, so instrumentation points in
inner loops stay free when observability is off.

**Span recording** is a second, independent switch on top of
:func:`enable`: :func:`record_spans` makes every completed span also
append a plain-dict record (name, path, start, duration, pid, tid,
tags) to a bounded process-local buffer.  The buffer feeds the Chrome
Trace export (:mod:`repro.obs.export`, ``--trace-out``) and the worker
→ parent span shipping of :mod:`repro.obs.aggregate`; it is drained
with :func:`drain_span_records`.  Start times come from
``time.perf_counter()``, which is system-wide monotonic on Linux, so
records from forked/spawned worker processes align with the parent's
on one timeline.  When the buffer cap is hit further records are
dropped (counted by :func:`dropped_span_records`) rather than growing
without bound.

Usage::

    with span("structure_combination", k=10):
        ...

    @span("palette_wl")
    def order(...):
        ...
"""

from __future__ import annotations

import contextvars
import functools
import os
import threading
import time
from typing import Callable

from repro.obs.logging import get_logger
from repro.obs.metrics import get_registry

#: module-global observability switch — the single check on the fast path
_ENABLED = False

#: secondary switch: retain completed-span records for trace export
_RECORDING = False

#: cap on retained span records per process (export/shipping keeps up at
#: chunk boundaries; the cap only bounds pathological single-chunk runs)
MAX_SPAN_RECORDS = 200_000

_records: "list[dict]" = []
_records_dropped = 0
_records_lock = threading.Lock()
_drop_warned = False

#: the active span stack, a ContextVar so concurrent asyncio tasks on
#: one thread (the serving frontend) each see their own lineage — a
#: thread-local list would interleave enter/exit across tasks and leak
#: whichever span was not on top when it exited
_SPAN_STACK: "contextvars.ContextVar[tuple]" = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)


def _reinit_lock_after_fork() -> None:
    """Forked children get a fresh records lock (the parent's could have
    been held by another thread at fork time and would never unlock)."""
    global _records_lock
    _records_lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # absent on some platforms (Windows)
    os.register_at_fork(after_in_child=_reinit_lock_after_fork)


def enabled() -> bool:
    """Whether span tracing / gated metrics are currently recording."""
    return _ENABLED


def enable() -> None:
    """Turn observability on (spans time themselves, gated metrics record)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Return to the zero-overhead default."""
    global _ENABLED
    _ENABLED = False


def recording() -> bool:
    """Whether completed spans are being retained as records."""
    return _RECORDING


def record_spans(on: bool = True) -> None:
    """Toggle span-record retention (requires :func:`enable` to matter)."""
    global _RECORDING
    _RECORDING = on


def _note_dropped(n: int) -> None:
    """Account for ``n`` records lost to the cap (caller holds the lock).

    The loss is surfaced three ways: the process-local drop count
    (:func:`dropped_span_records`), the ``obs.spans_dropped`` counter
    (so ``repro report`` flags it), and a one-time structured WARNING —
    once per process, not once per record, because overflow happens on
    the per-span hot path.
    """
    global _records_dropped, _drop_warned
    _records_dropped += n
    get_registry().counter("obs.spans_dropped").inc(n)
    if not _drop_warned:
        _drop_warned = True
        get_logger("obs.trace").warning(
            "span record buffer full (cap %d): dropping further span records; "
            "trace export will be incomplete",
            MAX_SPAN_RECORDS,
            extra={"span_record_cap": MAX_SPAN_RECORDS, "dropped_so_far": n},
        )


def add_span_record(record: dict) -> None:
    """Append one completed-span record (used by the worker merge path).

    Respects the process cap: overflow increments the dropped count
    instead of growing the buffer.
    """
    with _records_lock:
        if len(_records) >= MAX_SPAN_RECORDS:
            _note_dropped(1)
        else:
            _records.append(record)


def extend_span_records(records: "list[dict]") -> None:
    """Append many records (bulk form of :func:`add_span_record`)."""
    with _records_lock:
        room = MAX_SPAN_RECORDS - len(_records)
        if room >= len(records):
            _records.extend(records)
        else:
            _records.extend(records[:room])
            _note_dropped(len(records) - room)


def drain_span_records() -> "list[dict]":
    """Return and clear the retained span records."""
    with _records_lock:
        out = list(_records)
        _records.clear()
        return out


def span_records() -> "list[dict]":
    """A copy of the retained span records (without clearing)."""
    with _records_lock:
        return list(_records)


def dropped_span_records() -> int:
    """How many records the cap has discarded in this process."""
    return _records_dropped


#: optional record-enrichment hook: a callable returning extra top-level
#: keys for every recorded span (installed by :mod:`repro.obs.rtrace` to
#: stamp the active request's trace identity onto plain spans).  Only
#: consulted when span recording is on, so the disabled fast path is
#: untouched.
_CONTEXT_PROVIDER: "Callable[[], dict | None] | None" = None


def set_context_provider(provider: "Callable[[], dict | None] | None") -> None:
    """Install (or clear) the span-record enrichment hook.

    ``provider()`` is called once per *recorded* span; any dict it
    returns is merged into the record as top-level keys (it must not use
    the reserved keys ``name``/``path``/``ts``/``dur``/``pid``/``tid``/
    ``tags``).  :mod:`repro.obs.rtrace` uses this to give every span
    completed under an active request context that request's trace id.
    """
    global _CONTEXT_PROVIDER
    _CONTEXT_PROVIDER = provider


def current_span() -> "span | None":
    """The innermost active span in this task/thread, or ``None``."""
    stack = _SPAN_STACK.get()
    return stack[-1] if stack else None


class span:
    """Context manager *and* decorator timing one named region.

    Attributes (meaningful only while/after an *enabled* run):
        name: the stage name; feeds histogram ``span.<name>``.
        tags: own tags merged over the parent span's tags.
        path: slash-joined names from the outermost span, e.g.
            ``"feature_extract/palette_wl"``.
        duration: wall seconds, set on exit.
    """

    __slots__ = (
        "name", "_own_tags", "tags", "path", "duration", "_start", "_active",
        "record_extra", "_token",
    )

    def __init__(self, name: str, **tags) -> None:
        self.name = name
        self._own_tags = tags
        self.tags = tags
        self.path = name
        self.duration: "float | None" = None
        self._start = 0.0
        self._active = False
        #: extra top-level record keys, applied AFTER the context
        #: provider so an owner (rtrace's request spans) can override
        #: the inherited identity with its own span/parent ids
        self.record_extra: "dict | None" = None
        self._token: "contextvars.Token | None" = None

    def __enter__(self) -> "span":
        if not _ENABLED:
            return self
        stack = _SPAN_STACK.get()
        parent = stack[-1] if stack else None
        if parent is not None:
            self.path = f"{parent.path}/{self.name}"
            self.tags = {**parent.tags, **self._own_tags}
        else:
            self.path = self.name
            self.tags = dict(self._own_tags)
        self._token = _SPAN_STACK.set(stack + (self,))
        self._active = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        self.duration = time.perf_counter() - self._start
        self._active = False
        token, self._token = self._token, None
        if token is not None:
            try:
                _SPAN_STACK.reset(token)
            except ValueError:
                # exited in a different context than it entered (rare:
                # generator-held spans); best-effort unwind instead
                stack = _SPAN_STACK.get()
                if stack and stack[-1] is self:
                    _SPAN_STACK.set(stack[:-1])
        get_registry().histogram(f"span.{self.name}").observe(self.duration)
        if _RECORDING:
            record = {
                "name": self.name,
                "path": self.path,
                "ts": self._start,
                "dur": self.duration,
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "tags": dict(self.tags),
            }
            if _CONTEXT_PROVIDER is not None:
                extra = _CONTEXT_PROVIDER()
                if extra:
                    record.update(extra)
            if self.record_extra:
                record.update(self.record_extra)
            add_span_record(record)
        return False

    def __call__(self, func):
        """Decorator form: each call runs inside a fresh span."""

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            with span(self.name, **self._own_tags):
                return func(*args, **kwargs)

        return wrapper

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "active" if self._active else "idle"
        return f"span({self.name!r}, {state}, tags={self.tags})"


# ----------------------------------------------------------------------
# gated hot-path metric helpers
# ----------------------------------------------------------------------
def observe(name: str, value: float) -> None:
    """Record a histogram observation — only when observability is on."""
    if _ENABLED:
        get_registry().histogram(name).observe(value)


def observe_many(name: str, values) -> None:
    """Record a batch of histogram observations — only when observability
    is on.  One registry lookup and one lock acquisition for the whole
    sequence, so per-element instrumentation in hot loops can accumulate
    locally and flush once (state identical to per-value :func:`observe`)."""
    if _ENABLED and values:
        get_registry().histogram(name).observe_many(values)


def incr(name: str, amount: float = 1.0) -> None:
    """Bump a counter — only when observability is on."""
    if _ENABLED:
        get_registry().counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge — only when observability is on."""
    if _ENABLED:
        get_registry().gauge(name).set(value)

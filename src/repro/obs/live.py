"""Live telemetry plane: OpenMetrics exposition, heartbeats, resources.

Everything :mod:`repro.obs` collects is snapshot-at-exit by default —
``--metrics-out`` and ``repro report`` only speak *after* a run ends.
This module makes a running process observable **while it runs**:

* :class:`TelemetryPublisher` — a daemon thread pairing a stdlib
  ``http.server`` endpoint with a periodic sampling tick.  ``GET
  /metrics`` serves the default registry as Prometheus/OpenMetrics text
  exposition (rendered from the same plain-data export path as
  :meth:`~repro.obs.metrics.MetricsRegistry.mergeable_snapshot`, so
  histogram quantiles come from the full deterministic reservoir, not a
  second estimator) and ``GET /healthz`` returns run phase, run id and
  uptime as JSON.  Enabled with ``--telemetry-port`` on the CLI.
* **Heartbeat files** — :class:`Heartbeat` writes a small JSON progress
  document (run id, stage, units done/total, pairs/sec, ETA)
  atomically (tmp + ``os.replace``, like
  :class:`~repro.robust.checkpoint.RunCheckpoint`), so a reader can
  ``cat`` it at any instant — including the instant the writer is
  killed — and always parse valid JSON.  Enabled with ``--heartbeat
  PATH``; the runner, :func:`~repro.core.parallel.parallel_extract_batch`
  and the streaming loop tick it through the module-level
  :func:`heartbeat_tick` (a single ``None`` check when unconfigured).
* **Resource sampling** — :func:`sample_process_resources` publishes
  RSS (``/proc/self/statm``), CPU seconds and the open-fd count as
  ``proc.*`` gauges; pool workers additionally ship a
  ``proc.worker_rss_bytes.pid<pid>`` gauge back with every chunk
  payload (see :mod:`repro.obs.aggregate`), so the parent's exposition
  covers the whole fleet.  Per-stage ``tracemalloc`` peaks are opt-in
  (:func:`set_tracemalloc` / ``REPRO_TELEMETRY_TRACEMALLOC=1``) because
  tracing allocations is far from free.
* **Alerts** — :func:`emit_alert` turns a threshold crossing (e.g. the
  streaming AUC-drift monitors in :mod:`repro.streaming.prequential`)
  into one structured ``repro.obs.alert`` log record plus ``obs.alerts``
  counters, so log shipping and the metrics endpoint both see it.

Like spans, the whole plane is a no-op unless explicitly switched on:
no publisher, no configured heartbeat and no tracemalloc switch means
the hooks in the hot paths cost one ``is None`` / flag check each.
"""

from __future__ import annotations

import json
import os
import threading
import time
import tracemalloc
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from contextlib import contextmanager

from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry, get_registry, percentile_of
from repro.obs.trace import enabled as obs_enabled

__all__ = [
    "HEARTBEAT_SCHEMA_VERSION",
    "Heartbeat",
    "TelemetryPublisher",
    "atomic_write_text",
    "configure_heartbeat",
    "current_exemplars",
    "current_phase",
    "emit_alert",
    "get_heartbeat",
    "heartbeat_tick",
    "peak_rss_bytes",
    "read_open_fds",
    "read_rss_bytes",
    "render_openmetrics",
    "run_id",
    "sample_process_resources",
    "set_exemplar_provider",
    "set_phase",
    "set_tracemalloc",
    "tracemalloc_enabled",
    "tracemalloc_stage",
]

_LOG = get_logger("obs.live")
_ALERT_LOG = get_logger("obs.alert")

HEARTBEAT_SCHEMA_VERSION = 1

#: exposition content type (the Prometheus text format is a strict
#: subset of OpenMetrics once the trailing ``# EOF`` is present)
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


# ----------------------------------------------------------------------
# atomic writes (the heartbeat primitive, shared by --metrics-out etc.)
# ----------------------------------------------------------------------
def atomic_write_text(path: "str | Path", text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    A reader never observes a truncated file: it sees either the old
    content or the new content, even if the writer dies mid-write.  The
    temp name carries the writer's pid so two processes aiming at the
    same path cannot corrupt each other's staging file.
    """
    target = Path(path)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, target)
    finally:
        # a failed replace (or a kill between write and replace on a
        # previous run) must not leave staging litter behind forever
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:
                pass


# ----------------------------------------------------------------------
# run identity and phase
# ----------------------------------------------------------------------
_RUN_ID: "str | None" = None
_RUN_STARTED = time.time()
_PHASE = "idle"
_PHASE_LOCK = threading.Lock()


def run_id() -> str:
    """A stable identifier for this process's run (pid + start time)."""
    global _RUN_ID
    if _RUN_ID is None:
        _RUN_ID = f"run-{os.getpid()}-{int(_RUN_STARTED)}"
    return _RUN_ID


def set_phase(phase: str) -> None:
    """Record the run's current phase (served by ``/healthz``)."""
    global _PHASE
    with _PHASE_LOCK:
        _PHASE = str(phase)


def current_phase() -> str:
    """The phase most recently recorded with :func:`set_phase`."""
    with _PHASE_LOCK:
        return _PHASE


# ----------------------------------------------------------------------
# resource sampling (stdlib + /proc only; degrade to 0 off-Linux)
# ----------------------------------------------------------------------
def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):  # pragma: no cover - non-POSIX
        return 4096


_PAGE_SIZE = _page_size()


def read_rss_bytes() -> float:
    """Current resident set size in bytes (``/proc/self/statm``).

    Returns 0.0 where ``/proc`` is unavailable — callers treat 0 as
    "unknown" and skip the gauge rather than publish a lie.
    """
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as fh:
            fields = fh.read().split()
        return float(int(fields[1]) * _PAGE_SIZE)
    except (OSError, IndexError, ValueError):  # pragma: no cover - non-Linux
        return 0.0


def peak_rss_bytes() -> float:
    """Lifetime peak RSS in bytes (``getrusage``; 0.0 when unavailable)."""
    try:
        import resource

        # ru_maxrss is kilobytes on Linux (man getrusage)
        return float(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss) * 1024.0
    except (ImportError, ValueError, OSError):  # pragma: no cover - non-POSIX
        return 0.0


def read_open_fds() -> int:
    """Open file descriptors of this process (-1 when unknowable)."""
    try:
        return len(os.listdir("/proc/self/fd"))
    except OSError:  # pragma: no cover - non-Linux
        return -1


def sample_process_resources(
    registry: "MetricsRegistry | None" = None,
) -> "dict[str, float]":
    """Publish this process's resource usage as ``proc.*`` gauges.

    Sets ``proc.rss_bytes``, ``proc.peak_rss_bytes``, ``proc.cpu_seconds``
    and ``proc.open_fds`` on ``registry`` (default registry when omitted)
    and returns the sampled values.  Unknown readings (0 / -1) are
    returned but not published.
    """
    reg = registry if registry is not None else get_registry()
    sampled = {
        "proc.rss_bytes": read_rss_bytes(),
        "proc.peak_rss_bytes": peak_rss_bytes(),
        "proc.cpu_seconds": time.process_time(),
        "proc.open_fds": float(read_open_fds()),
    }
    for name, value in sampled.items():
        if value >= 0.0 and not (value == 0.0 and name.endswith("rss_bytes")):
            reg.gauge(name).set(value)
    return sampled


# ----------------------------------------------------------------------
# per-stage tracemalloc peaks (opt-in: allocation tracing is not free)
# ----------------------------------------------------------------------
_TRACEMALLOC = os.environ.get("REPRO_TELEMETRY_TRACEMALLOC", "") not in ("", "0")


def set_tracemalloc(on: bool = True) -> None:
    """Toggle per-stage allocation-peak tracking (see :func:`tracemalloc_stage`)."""
    global _TRACEMALLOC
    _TRACEMALLOC = on


def tracemalloc_enabled() -> bool:
    """Whether :func:`tracemalloc_stage` is currently measuring."""
    return _TRACEMALLOC


@contextmanager
def tracemalloc_stage(stage: str) -> Iterator[None]:
    """Record the allocation peak of one stage as a gauge.

    When tracking is on (:func:`set_tracemalloc` or the
    ``REPRO_TELEMETRY_TRACEMALLOC=1`` environment variable) the gauge
    ``proc.tracemalloc_peak_bytes.<stage>`` is raised to the stage's
    peak traced allocation.  When off — the default — the context is a
    plain ``yield`` behind one flag check, because ``tracemalloc``
    itself slows allocation-heavy code far beyond the <2% budget the
    always-on sampler holds itself to.
    """
    if not _TRACEMALLOC:
        yield
        return
    started_here = not tracemalloc.is_tracing()
    if started_here:
        tracemalloc.start()
    else:
        tracemalloc.reset_peak()
    try:
        yield
    finally:
        _current, peak = tracemalloc.get_traced_memory()
        if started_here:
            tracemalloc.stop()
        get_registry().gauge(f"proc.tracemalloc_peak_bytes.{stage}").set_max(
            float(peak)
        )


# ----------------------------------------------------------------------
# structured alerts
# ----------------------------------------------------------------------
def emit_alert(kind: str, message: str, **context: "float | int | str | bool") -> None:
    """Emit one structured alert: an ``obs.alert`` log record + counters.

    The record is a WARNING on logger ``repro.obs.alert`` with
    ``alert=<kind>`` and every ``context`` item as structured extras
    (top-level keys in JSON-lines mode).  The counters ``obs.alerts``
    and ``obs.alerts.<kind>`` are bumped when observability is enabled,
    so the live endpoint and the final snapshot both count crossings.
    """
    _ALERT_LOG.warning(
        "%s: %s", kind, message, extra={"alert": kind, **context}
    )
    if obs_enabled():
        registry = get_registry()
        registry.counter("obs.alerts").inc()
        registry.counter(f"obs.alerts.{kind}").inc()


# ----------------------------------------------------------------------
# heartbeat files
# ----------------------------------------------------------------------
class Heartbeat:
    """Atomic JSON progress file for one running process.

    Every :meth:`write` replaces ``path`` with a fresh document::

        {"schema": 1, "run_id": "run-1234-...", "pid": 1234,
         "ts": 1699.0, "phase": "table3", "stage": "parallel_extract",
         "done": 12, "total": 40, "pairs_per_second": 812.4,
         "eta_seconds": 8.1, "beats": 13}

    Writes are throttled to one per ``min_interval`` seconds — except
    stage changes and completion (``done == total``), which always land
    — and ``done`` is clamped monotone within a stage so a tailing
    reader never sees progress move backwards.
    """

    def __init__(self, path: "str | Path", *, min_interval: float = 0.2) -> None:
        if min_interval < 0:
            raise ValueError(f"min_interval must be >= 0, got {min_interval}")
        self.path = Path(path)
        self.min_interval = min_interval
        self._lock = threading.Lock()
        self._beats = 0
        self._last_write = float("-inf")
        self._stage: "str | None" = None
        self._stage_started = 0.0
        self._done = 0.0

    def write(
        self,
        stage: str,
        *,
        done: "float | None" = None,
        total: "float | None" = None,
        pairs_per_second: "float | None" = None,
        force: bool = False,
        extra: "Mapping[str, Any] | None" = None,
    ) -> bool:
        """Write one beat; returns whether a file write actually happened."""
        now = time.time()
        with self._lock:
            stage_changed = stage != self._stage
            if stage_changed:
                self._stage = stage
                self._stage_started = now
                self._done = 0.0
            if done is not None:
                # monotone within a stage: a retried chunk round must not
                # make a tailing reader watch progress run backwards
                done = max(float(done), self._done)
                self._done = done
            finished = done is not None and total is not None and done >= float(total)
            if (
                not force
                and not stage_changed
                and not finished
                and now - self._last_write < self.min_interval
            ):
                return False
            self._last_write = now
            self._beats += 1
            payload: "dict[str, Any]" = {
                "schema": HEARTBEAT_SCHEMA_VERSION,
                "run_id": run_id(),
                "pid": os.getpid(),
                "ts": round(now, 6),
                "phase": current_phase(),
                "stage": stage,
                "done": done,
                "total": float(total) if total is not None else None,
                "pairs_per_second": (
                    round(pairs_per_second, 3) if pairs_per_second is not None else None
                ),
                "eta_seconds": self._eta(done, total, now),
                "beats": self._beats,
            }
            if extra:
                payload.update(extra)
        atomic_write_text(self.path, json.dumps(payload, sort_keys=True) + "\n")
        return True

    def _eta(
        self, done: "float | None", total: "float | None", now: float
    ) -> "float | None":
        """Remaining seconds extrapolated from this stage's own rate."""
        if done is None or total is None or done <= 0:
            return None
        elapsed = now - self._stage_started
        if elapsed <= 0:
            return None
        remaining = max(float(total) - done, 0.0)
        return round(remaining * elapsed / done, 3)


_HEARTBEAT: "Heartbeat | None" = None


def _reset_after_fork() -> None:
    """Forked children drop inherited live-telemetry state.

    The phase lock could have been held by a parent thread at fork time
    (fresh lock is safe: the child is single-threaded here), and the
    inherited heartbeat must go — a child beating the parent's heartbeat
    file would masquerade as the parent run being alive.
    """
    global _PHASE_LOCK, _HEARTBEAT
    _PHASE_LOCK = threading.Lock()
    _HEARTBEAT = None


if hasattr(os, "register_at_fork"):  # absent on some platforms (Windows)
    os.register_at_fork(after_in_child=_reset_after_fork)


def configure_heartbeat(
    path: "str | Path | None", *, min_interval: float = 0.2
) -> "Heartbeat | None":
    """Install (``path``) or remove (``None``) the process heartbeat."""
    global _HEARTBEAT
    _HEARTBEAT = Heartbeat(path, min_interval=min_interval) if path else None
    return _HEARTBEAT


def get_heartbeat() -> "Heartbeat | None":
    """The configured process heartbeat, or ``None``."""
    return _HEARTBEAT


def heartbeat_tick(
    stage: str,
    *,
    done: "float | None" = None,
    total: "float | None" = None,
    pairs_per_second: "float | None" = None,
    force: bool = False,
    extra: "Mapping[str, Any] | None" = None,
) -> None:
    """Beat the configured heartbeat; a single ``None`` check otherwise.

    This is the hook the runner, the parallel dispatch loop, the
    streaming loop and the serve replay driver call — hot-path-safe
    because the unconfigured case returns immediately.  ``extra`` items
    land as top-level keys in the heartbeat document (the replay driver
    uses it for ``queue_depth``).
    """
    if _HEARTBEAT is None:
        return
    _HEARTBEAT.write(
        stage,
        done=done,
        total=total,
        pairs_per_second=pairs_per_second,
        force=force,
        extra=extra,
    )


# ----------------------------------------------------------------------
# OpenMetrics rendering
# ----------------------------------------------------------------------
#: optional exemplar source: a callable returning raw-histogram-name ->
#: (trace_id, value, ts).  Installed by :mod:`repro.obs.slo` (which
#: already imports this module for :func:`emit_alert`; the hook keeps
#: the dependency one-directional).
_EXEMPLAR_PROVIDER: "Callable[[], Mapping[str, tuple[str, float, float]]] | None" = None


def set_exemplar_provider(
    provider: "Callable[[], Mapping[str, tuple[str, float, float]]] | None",
) -> None:
    """Install (or clear) the exemplar source consulted on each
    exposition refresh; see :func:`render_openmetrics`."""
    global _EXEMPLAR_PROVIDER
    _EXEMPLAR_PROVIDER = provider


def current_exemplars() -> "Mapping[str, tuple[str, float, float]] | None":
    """The provider's current exemplars, or ``None`` when unset."""
    if _EXEMPLAR_PROVIDER is None:
        return None
    return _EXEMPLAR_PROVIDER()


_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _metric_name(raw: str, prefix: str = "repro_") -> str:
    """``parallel.pairs_extracted`` -> ``repro_parallel_pairs_extracted``."""
    safe = "".join(c if c in _NAME_OK else "_" for c in raw)
    if not safe or safe[0].isdigit():
        safe = f"_{safe}"
    return prefix + safe.replace(":", "_")


def _fmt(value: float) -> str:
    """A float literal every OpenMetrics parser accepts (no NaN surprises)."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_openmetrics(
    snapshot: "Mapping[str, Any]",
    *,
    phase: "str | None" = None,
    uptime_seconds: "float | None" = None,
    exemplars: "Mapping[str, tuple[str, float, float]] | None" = None,
) -> str:
    """Render a mergeable registry snapshot as OpenMetrics text.

    ``snapshot`` is the plain-data shape of
    :meth:`~repro.obs.metrics.MetricsRegistry.mergeable_snapshot` —
    counters/gauges as values, histograms as raw state — which lets the
    renderer compute p50/p95/p99 from the histogram's own deterministic
    reservoir instead of introducing a second estimator.  Counters
    become ``<name>_total`` counter families, gauges become gauges,
    histograms become summary families (``_count``/``_sum`` plus
    ``quantile``-labelled samples).  ``phase`` adds a ``repro_run_info``
    info family; the document always ends with ``# EOF``.

    ``exemplars`` maps a *raw* histogram name (e.g. ``serve.request_seconds``)
    to ``(trace_id, value, ts)``; the exemplar is attached to that
    family's ``_count`` sample in OpenMetrics exemplar syntax —
    ``# {trace_id="..."} value ts`` — so an operator can jump from the
    latency metric straight to the slowest request's trace.
    """
    lines: "list[str]" = []
    seen: "set[str]" = set()

    def family(name: str) -> bool:
        # two raw names may sanitise to the same family; first wins so
        # the exposition never declares a family twice (a parse error)
        if name in seen:
            return False
        seen.add(name)
        return True

    if phase is not None:
        if family("repro_run"):
            lines.append("# TYPE repro_run info")
            lines.append(
                'repro_run_info{run_id="%s",phase="%s"} 1'
                % (_escape_label(run_id()), _escape_label(phase))
            )
    if uptime_seconds is not None:
        if family("repro_telemetry_uptime_seconds"):
            lines.append("# TYPE repro_telemetry_uptime_seconds gauge")
            lines.append(
                f"repro_telemetry_uptime_seconds {_fmt(uptime_seconds)}"
            )

    for raw, value in snapshot.get("counters", {}).items():
        name = _metric_name(str(raw))
        if not family(name):
            continue
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name}_total {_fmt(float(value))}")

    for raw, value in snapshot.get("gauges", {}).items():
        name = _metric_name(str(raw))
        if not family(name):
            continue
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(float(value))}")

    for raw, state in snapshot.get("histograms", {}).items():
        name = _metric_name(str(raw))
        if not family(name):
            continue
        count = int(state.get("count", 0))
        total = float(state.get("sum", 0.0))
        samples = [float(v) for v in state.get("samples", [])]
        lines.append(f"# TYPE {name} summary")
        # p99 exists for the serving latency SLO; it is as meaningful
        # for every other histogram, so all summaries expose it
        for q in (50.0, 95.0, 99.0):
            if samples:
                lines.append(
                    f'{name}{{quantile="{q / 100:g}"}} '
                    f"{_fmt(percentile_of(samples, q))}"
                )
        exemplar = exemplars.get(str(raw)) if exemplars else None
        if exemplar is not None:
            trace_id, ex_value, ex_ts = exemplar
            lines.append(
                f"{name}_count {count} "
                f'# {{trace_id="{_escape_label(trace_id)}"}} '
                f"{_fmt(ex_value)} {_fmt(ex_ts)}"
            )
        else:
            lines.append(f"{name}_count {count}")
        lines.append(f"{name}_sum {_fmt(total)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# the publisher: HTTP endpoint + periodic sampling tick
# ----------------------------------------------------------------------
class TelemetryPublisher:
    """Serve live metrics over HTTP while periodically sampling resources.

    A daemon thread runs a :class:`http.server.ThreadingHTTPServer`;
    a second daemon thread ticks every ``interval`` seconds, sampling
    process resources into the registry and re-rendering the cached
    OpenMetrics exposition.  ``GET /metrics`` serves the latest
    rendering, ``GET /healthz`` a JSON liveness document with the run
    phase.  ``port=0`` binds an ephemeral port (tests); the bound port
    is available as :attr:`port` after :meth:`start`.

    Use as a context manager, or call :meth:`start`/:meth:`stop`.
    """

    def __init__(
        self,
        port: int = 0,
        *,
        host: str = "127.0.0.1",
        interval: float = 1.0,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.host = host
        self.requested_port = port
        self.interval = interval
        self.registry = registry if registry is not None else get_registry()
        self.started_at = 0.0
        self._server: "ThreadingHTTPServer | None" = None
        self._server_thread: "threading.Thread | None" = None
        self._ticker_thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._exposition = "# EOF\n"
        self._exposition_lock = threading.Lock()

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "TelemetryPublisher":
        if self._server is not None:
            raise RuntimeError("publisher already started")
        self.started_at = time.time()
        self._stop.clear()
        self.refresh()
        publisher = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                publisher._handle(self)

            def log_message(self, format: str, *args: Any) -> None:
                # diagnostics belong to the repro logger, not stderr
                _LOG.debug("telemetry http: " + format, *args)

        self._server = ThreadingHTTPServer(
            (self.host, self.requested_port), _Handler
        )
        self._server.daemon_threads = True
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            # a coarse poll keeps the idle server thread's GIL wake-ups
            # negligible next to the extraction hot loop; shutdown()
            # latency (bounded by one poll) only matters at process exit
            kwargs={"poll_interval": 0.5},
            name="repro-telemetry-http",
            daemon=True,
        )
        self._server_thread.start()
        self._ticker_thread = threading.Thread(
            target=self._tick_loop, name="repro-telemetry-tick", daemon=True
        )
        self._ticker_thread.start()
        _LOG.info("telemetry endpoint serving at %s", self.url)
        return self

    def stop(self) -> None:
        """Stop serving and sampling (idempotent)."""
        self._stop.set()
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
            server.server_close()
        for thread in (self._server_thread, self._ticker_thread):
            if thread is not None:
                thread.join(timeout=5.0)
        self._server_thread = None
        self._ticker_thread = None

    def __enter__(self) -> "TelemetryPublisher":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        if self._server is None:
            return self.requested_port
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- sampling + rendering ------------------------------------------
    def refresh(self) -> str:
        """Sample resources and re-render the exposition; returns it."""
        sample_process_resources(self.registry)
        text = render_openmetrics(
            self.registry.mergeable_snapshot(),
            phase=current_phase(),
            uptime_seconds=round(time.time() - self.started_at, 3),
            exemplars=current_exemplars(),
        )
        with self._exposition_lock:
            self._exposition = text
        return text

    def _tick_loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.refresh()
            except Exception:  # pragma: no cover - defensive: keep serving
                _LOG.exception("telemetry tick failed; endpoint keeps serving")

    # -- request handling ----------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.refresh().encode("utf-8")
            self._respond(request, 200, OPENMETRICS_CONTENT_TYPE, body)
        elif path == "/healthz":
            payload = {
                "status": "ok",
                "run_id": run_id(),
                "phase": current_phase(),
                "pid": os.getpid(),
                "uptime_seconds": round(time.time() - self.started_at, 3),
            }
            body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
            self._respond(request, 200, "application/json; charset=utf-8", body)
        else:
            body = b"not found: try /metrics or /healthz\n"
            self._respond(request, 404, "text/plain; charset=utf-8", body)

    @staticmethod
    def _respond(
        request: BaseHTTPRequestHandler, code: int, content_type: str, body: bytes
    ) -> None:
        request.send_response(code)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(body)))
        request.end_headers()
        request.wfile.write(body)

"""repro.obs — structured logging, metrics and span tracing.

The observability layer of the reproduction: every later performance PR
measures itself against the numbers this package exports.

* :mod:`repro.obs.logging` — ``get_logger``/``configure_logging``, a
  silent-by-default logger namespace with optional JSON-lines output.
* :mod:`repro.obs.metrics` — a thread-safe process-local registry of
  counters, gauges and histograms with ``snapshot()``/``to_json()``.
* :mod:`repro.obs.trace` — ``span`` context-manager/decorator tracing
  with a guaranteed no-op fast path when disabled.

Quick tour::

    from repro import obs

    log = obs.get_logger("mymodule")
    obs.enable()                      # start recording spans + gated metrics
    with obs.span("my_stage", k=10):
        ...
    print(obs.get_registry().to_json())
    obs.disable()
"""

from repro.obs.logging import (
    JsonLinesFormatter,
    LEVELS,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    current_span,
    disable,
    enable,
    enabled,
    incr,
    observe,
    set_gauge,
    span,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonLinesFormatter",
    "LEVELS",
    "MetricsRegistry",
    "configure_logging",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "get_logger",
    "get_registry",
    "incr",
    "observe",
    "set_gauge",
    "span",
]

"""repro.obs — structured logging, metrics and span tracing.

The observability layer of the reproduction: every later performance PR
measures itself against the numbers this package exports.

* :mod:`repro.obs.logging` — ``get_logger``/``configure_logging``, a
  silent-by-default logger namespace with optional JSON-lines output.
* :mod:`repro.obs.metrics` — a thread-safe process-local registry of
  counters, gauges and histograms with ``snapshot()``/``to_json()``.
* :mod:`repro.obs.trace` — ``span`` context-manager/decorator tracing
  with a guaranteed no-op fast path when disabled, plus an optional
  bounded buffer of completed-span records (``record_spans``).
* :mod:`repro.obs.rtrace` — request-scoped tracing: ``TraceContext``
  identity carried in contextvars, ``rspan`` request spans, and wire
  hand-off across queue/executor/process boundaries.
* :mod:`repro.obs.slo` — declarative SLOs with sliding windows,
  multi-window burn-rate alerts and OpenMetrics exemplars.
* :mod:`repro.obs.contprof` — ``setitimer``-based continuous sampling
  profiler emitting collapsed-stack flamegraph files
  (``--continuous-profile``).
* :mod:`repro.obs.live` — the live telemetry plane: an OpenMetrics
  HTTP endpoint (``--telemetry-port``), atomic JSON heartbeat files
  (``--heartbeat``), resource-sampling gauges and structured alerts.
* :mod:`repro.obs.aggregate` — ships worker-process metrics/spans back
  to the parent at chunk boundaries and merges them into one registry.
* :mod:`repro.obs.export` — Chrome Trace Event JSON export of recorded
  spans (Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.bench` — benchmark history store
  (``BENCH_history.jsonl``) and the pairs/sec regression gate behind
  ``repro bench --compare``.
* :mod:`repro.obs.report` — joins metrics snapshots, checkpoint
  manifests and bench JSON into one Markdown/JSON run report
  (``repro report``).

Quick tour::

    from repro import obs

    log = obs.get_logger("mymodule")
    obs.enable()                      # start recording spans + gated metrics
    with obs.span("my_stage", k=10):
        ...
    print(obs.get_registry().to_json())
    obs.disable()
"""

from repro.obs.logging import (
    JsonLinesFormatter,
    LEVELS,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    current_span,
    disable,
    drain_span_records,
    enable,
    enabled,
    incr,
    observe,
    observe_many,
    record_spans,
    recording,
    set_gauge,
    span,
    span_records,
)
from repro.obs.live import (
    Heartbeat,
    TelemetryPublisher,
    atomic_write_text,
    configure_heartbeat,
    current_phase,
    emit_alert,
    get_heartbeat,
    heartbeat_tick,
    peak_rss_bytes,
    read_open_fds,
    read_rss_bytes,
    render_openmetrics,
    run_id,
    sample_process_resources,
    set_phase,
    set_tracemalloc,
    tracemalloc_stage,
)
from repro.obs.aggregate import (
    apply_worker_obs_state,
    collect_worker_payload,
    merge_worker_payload,
    parent_obs_state,
)
from repro.obs.export import (
    trace_events,
    validate_flow_events,
    validate_trace,
    write_trace,
)
from repro.obs.rtrace import (
    TraceContext,
    activate,
    current_context,
    current_wire,
    new_trace,
    rspan,
)
from repro.obs.slo import (
    Objective,
    SLOEngine,
    configure_slo,
    get_slo_engine,
    slo_observe,
)
from repro.obs.contprof import ContinuousProfiler

__all__ = [
    "ContinuousProfiler",
    "Counter",
    "Gauge",
    "Heartbeat",
    "Histogram",
    "JsonLinesFormatter",
    "LEVELS",
    "MetricsRegistry",
    "Objective",
    "SLOEngine",
    "TelemetryPublisher",
    "TraceContext",
    "activate",
    "apply_worker_obs_state",
    "atomic_write_text",
    "collect_worker_payload",
    "configure_heartbeat",
    "configure_logging",
    "configure_slo",
    "current_context",
    "current_phase",
    "current_span",
    "current_wire",
    "disable",
    "drain_span_records",
    "emit_alert",
    "enable",
    "enabled",
    "get_heartbeat",
    "get_logger",
    "get_registry",
    "get_slo_engine",
    "heartbeat_tick",
    "incr",
    "merge_worker_payload",
    "new_trace",
    "observe",
    "observe_many",
    "parent_obs_state",
    "peak_rss_bytes",
    "read_open_fds",
    "read_rss_bytes",
    "record_spans",
    "recording",
    "render_openmetrics",
    "rspan",
    "run_id",
    "sample_process_resources",
    "set_gauge",
    "set_phase",
    "set_tracemalloc",
    "slo_observe",
    "span",
    "span_records",
    "trace_events",
    "tracemalloc_stage",
    "validate_flow_events",
    "validate_trace",
    "write_trace",
]

"""A parameterized extraction workload with a per-stage profile report.

Backs the ``repro profile`` CLI command: run SSF extraction over a
deterministic sample of target links with observability enabled, then
render what the metrics registry saw — per-stage call counts and
p50/p95/max wall times for the four pipeline stages of Algorithms 1–3
(h-hop subgraph growth, structure combination, Palette-WL ordering,
normalized-influence matrix) plus the structural ratios (growth depth,
compression ratio, WL iterations) that explain *why* the timings look
the way they do.

This is the measurement harness every later performance PR is expected
to quote numbers from.
"""

from __future__ import annotations

import time

from repro.obs.metrics import get_registry
from repro.obs import trace
from repro.utils.rng import ensure_rng

#: (display name, histogram key) for the four extraction stages, in
#: pipeline order — the acceptance surface of the profile table.
STAGE_HISTOGRAMS = (
    ("subgraph growth", "span.subgraph_growth"),
    ("structure combination", "span.structure_combination"),
    ("Palette-WL ordering", "span.palette_wl"),
    ("influence matrix", "span.influence_matrix"),
)


def workload_pairs(network, n_pairs: int, seed: int = 0) -> list:
    """A deterministic profiling workload of ``n_pairs`` target links.

    Half the pairs are observed links spread evenly over the network's
    pair list (dense neighbourhoods, the expensive case); the other half
    are random node pairs (the negative-sample case an experiment run
    spends half its extraction budget on).
    """
    if n_pairs < 1:
        raise ValueError(f"n_pairs must be >= 1, got {n_pairs}")
    observed = list(network.pair_iter())
    rng = ensure_rng(seed)
    n_observed = min(len(observed), (n_pairs + 1) // 2)
    pairs: list = []
    if n_observed:
        stride = max(1, len(observed) // n_observed)
        pairs.extend(observed[::stride][:n_observed])
    nodes = network.nodes
    while len(pairs) < n_pairs and len(nodes) >= 2:
        i, j = rng.integers(len(nodes)), rng.integers(len(nodes))
        if i != j:
            pairs.append((nodes[int(i)], nodes[int(j)]))
    return pairs


def run_extraction_profile(
    network,
    *,
    dataset: str = "network",
    k: int = 10,
    n_pairs: int = 100,
    mode: str = "temporal",
    seed: int = 0,
) -> str:
    """Profile SSF extraction on ``network`` and render the stage table.

    Resets the default registry (instrumentation always records there),
    enables observability for the duration of the workload (restoring
    the previous state afterwards), and returns the report.
    """
    # imported here: repro.core.feature itself imports repro.obs
    from repro.core.feature import SSFConfig, SSFExtractor

    registry = get_registry()
    pairs = workload_pairs(network, n_pairs, seed=seed)
    config = SSFConfig(k=k, entry_mode=mode)
    extractor = SSFExtractor(network, config)

    was_enabled = trace.enabled()
    trace.enable()
    registry.reset()
    started = time.perf_counter()
    try:
        for a, b in pairs:
            extractor.extract(a, b)
    finally:
        if not was_enabled:
            trace.disable()
    elapsed = time.perf_counter() - started
    return format_profile_report(
        registry.snapshot(),
        dataset=dataset,
        n_pairs=len(pairs),
        k=k,
        mode=mode,
        elapsed=elapsed,
    )


def format_profile_report(
    snapshot: dict,
    *,
    dataset: str,
    n_pairs: int,
    k: int,
    mode: str,
    elapsed: float,
) -> str:
    """Render a registry snapshot as the per-stage profile report."""
    histograms = snapshot.get("histograms", {})
    per_link_ms = 1e3 * elapsed / n_pairs if n_pairs else float("nan")
    lines = [
        f"SSF extraction profile: dataset={dataset}  pairs={n_pairs}  "
        f"k={k}  mode={mode}",
        f"total {elapsed:.3f} s  ({per_link_ms:.2f} ms/link)",
        "",
        f"{'stage':<24}{'calls':>8}{'p50 ms':>10}{'p95 ms':>10}"
        f"{'max ms':>10}{'total s':>10}",
    ]
    for label, key in STAGE_HISTOGRAMS:
        h = histograms.get(key)
        if not h or not h.get("count"):
            lines.append(f"{label:<24}{0:>8}{'-':>10}{'-':>10}{'-':>10}{'-':>10}")
            continue
        lines.append(
            f"{label:<24}{h['count']:>8}"
            f"{1e3 * h['p50']:>10.3f}{1e3 * h['p95']:>10.3f}"
            f"{1e3 * h['max']:>10.3f}{h['sum']:>10.3f}"
        )

    lines.append("")
    lines.append("pipeline ratios")
    growth = histograms.get("subgraph.growth_h")
    if growth and growth.get("count"):
        lines.append(
            f"  h-hop growth depth      p50 {growth['p50']:g}   "
            f"max {growth['max']:g}"
        )
    compression = histograms.get("structure.compression_ratio")
    nodes_in = histograms.get("structure.nodes_in")
    nodes_out = histograms.get("structure.nodes_out")
    if compression and compression.get("count"):
        detail = ""
        if nodes_in and nodes_out:
            detail = (
                f"   (nodes in {nodes_in['mean']:.1f} -> "
                f"structure nodes {nodes_out['mean']:.1f})"
            )
        lines.append(
            f"  compression ratio       mean {compression['mean']:.2f}x{detail}"
        )
    wl = histograms.get("palette_wl.iterations")
    if wl and wl.get("count"):
        lines.append(
            f"  WL iterations           mean {wl['mean']:.2f}   p95 {wl['p95']:g}"
        )
    return "\n".join(lines)

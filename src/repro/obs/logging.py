"""Structured logging facade for the reproduction library.

All library diagnostics flow through loggers in the ``repro`` namespace,
obtained via :func:`get_logger`.  By default the library is silent — a
:class:`logging.NullHandler` is installed on the namespace root so that
importing ``repro`` never spams a host application's logs.  Entry points
(the CLI, benchmark drivers, notebooks) opt in with
:func:`configure_logging`, which installs exactly one stream handler and
supports either a human-readable line format or JSON lines for log
shipping.

Design rules:

* *Command output* (tables, reports, recommendations) stays on stdout;
  diagnostics go to the logger (stderr by default), so piping a command
  into a file never mixes the two.
* Reconfiguration is idempotent: :func:`configure_logging` replaces any
  handler it previously installed instead of stacking duplicates.
* Extra fields passed via ``logger.info("msg", extra={...})`` are
  emitted as top-level keys in JSON-lines mode, which is how structured
  context (dataset names, sizes, timings) reaches log aggregation.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

#: the namespace root every library logger lives under
ROOT_LOGGER_NAME = "repro"

#: marker attribute identifying handlers installed by configure_logging
_MANAGED_ATTR = "_repro_obs_managed"

#: record attributes that are part of the stdlib record, not user extras
_STANDARD_RECORD_FIELDS = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    )
) | {"message", "asctime", "taskName"}

LEVELS = ("debug", "info", "warning", "error", "critical")


def get_logger(name: "str | None" = None) -> logging.Logger:
    """A logger in the ``repro`` namespace.

    ``get_logger("core.feature")`` and ``get_logger("repro.core.feature")``
    return the same logger; ``get_logger()`` returns the namespace root.
    """
    if not name or name == ROOT_LOGGER_NAME:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


class JsonLinesFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message + extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_RECORD_FIELDS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str, sort_keys=False)


def configure_logging(
    level: str = "warning",
    json_lines: bool = False,
    stream: "IO[str] | None" = None,
) -> logging.Logger:
    """Install (or replace) the library's single log handler.

    Args:
        level: one of :data:`LEVELS` (case-insensitive).
        json_lines: emit JSON-lines records instead of human-readable text.
        stream: destination (defaults to ``sys.stderr``).

    Returns:
        The configured ``repro`` root logger.
    """
    normalized = level.lower()
    if normalized not in LEVELS:
        raise ValueError(f"level must be one of {LEVELS}, got {level!r}")
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, _MANAGED_ATTR, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _MANAGED_ATTR, True)
    if json_lines:
        handler.setFormatter(JsonLinesFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(normalized.upper())
    # diagnostics must never bubble into a host application's root handlers
    root.propagate = False
    return root


# Silent-by-default: importing the library must not print anything.
logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())

"""Process-local metrics registry: counters, gauges and histograms.

The registry is the numeric half of the observability layer: span
tracing (:mod:`repro.obs.trace`) and hand-placed instrumentation feed
it, and :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_json`
export it — to the ``--metrics-out`` CLI option, to
``results/extraction_metrics.json`` in the perf benchmark, and to tests
that assert on pipeline behaviour (cache hit rates, WL iteration
counts, compression ratios).

Semantics:

* :class:`Counter` — monotonically increasing float (increments must be
  ``>= 0``).
* :class:`Gauge` — a point-in-time value, last write wins.
* :class:`Histogram` — running count/sum/min/max over *all* observations
  plus a bounded sample window for quantiles (p50/p95 by default).  The
  window keeps the most recent :data:`Histogram.max_samples` values, so
  quantiles track current behaviour on long streams while the running
  aggregates stay exact.

Everything is thread-safe: metric creation takes the registry lock, and
each metric guards its own state, so worker threads (e.g. a
``ThreadPoolExecutor`` driving extraction) can hammer the same counter
without losing increments.  Metrics are process-local by design —
multiprocessing workers each see their own registry; the parallel
extraction layer therefore records batch-level throughput in the parent
process (see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import json
import threading
from typing import Iterable


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value; the last ``set`` wins."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Running aggregates plus a bounded recent-sample window.

    ``count``/``sum``/``min``/``max`` cover every observation ever made;
    ``percentile`` is computed over the most recent ``max_samples``
    observations (a sliding window, exact until the window fills).
    """

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max", "_samples", "_next", "max_samples")

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: list[float] = []
        self._next = 0  # ring-buffer write position once the window is full
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                self._samples[self._next] = value
                self._next = (self._next + 1) % self.max_samples

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        with self._lock:
            window = sorted(self._samples)
        if not window:
            return float("nan")
        rank = max(1, -(-int(q * len(window)) // 100))  # ceil without float
        rank = min(max(rank, 1), len(window))
        return window[rank - 1]

    def summary(self, quantiles: Iterable[float] = (50.0, 95.0)) -> dict:
        """Exportable aggregate view used by registry snapshots."""
        out: dict = {
            "count": self._count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        for q in quantiles:
            key = f"p{q:g}".replace(".", "_")
            out[key] = self.percentile(q)
        return out


class MetricsRegistry:
    """Named metrics with get-or-create access and JSON export."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, self._counters, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, self._gauges, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, self._histograms, Histogram)

    def _get_or_create(self, name: str, table: dict, factory):
        if not name:
            raise ValueError("metric name must be non-empty")
        metric = table.get(name)
        if metric is not None:
            return metric
        with self._lock:
            metric = table.get(name)
            if metric is None:
                self._check_name_free(name, table)
                metric = factory()
                table[name] = metric
            return metric

    def _check_name_free(self, name: str, target: dict) -> None:
        for table, kind in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if table is not target and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict view of every metric, safe to serialise."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int = 1) -> str:
        """The snapshot as JSON (NaN-free: empty aggregates become null)."""

        def scrub(obj):
            if isinstance(obj, dict):
                return {k: scrub(v) for k, v in obj.items()}
            if isinstance(obj, float) and obj != obj:  # NaN
                return None
            return obj

        return json.dumps(scrub(self.snapshot()), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every metric (tests and fresh profiling runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: the process-wide default registry the instrumentation writes to
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY

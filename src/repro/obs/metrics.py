"""Process-local metrics registry: counters, gauges and histograms.

The registry is the numeric half of the observability layer: span
tracing (:mod:`repro.obs.trace`) and hand-placed instrumentation feed
it, and :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.to_json`
export it — to the ``--metrics-out`` CLI option, to
``results/extraction_metrics.json`` in the perf benchmark, and to tests
that assert on pipeline behaviour (cache hit rates, WL iteration
counts, compression ratios).

Semantics:

* :class:`Counter` — monotonically increasing float (increments must be
  ``>= 0``).
* :class:`Gauge` — a point-in-time value, last write wins.
* :class:`Histogram` — running count/sum/min/max over *all* observations
  plus a bounded **reservoir sample** for quantiles (p50/p95/p99 by
  default).  The reservoir is filled by deterministic (seeded,
  index-based) reservoir sampling, so the quantiles estimate the distribution
  of *every* observation ever made — not just the most recent window —
  while the running aggregates stay exact.  Summaries carry an
  ``"estimator"`` key naming the quantile estimator.

Everything is thread-safe: metric creation takes the registry lock, and
each metric guards its own state, so worker threads (e.g. a
``ThreadPoolExecutor`` driving extraction) can hammer the same counter
without losing increments.  Metrics are process-local — but no longer
process-*bound*: :meth:`MetricsRegistry.mergeable_snapshot` exports a
registry as mergeable deltas and :meth:`MetricsRegistry.merge` folds
such a delta into another registry (counters add, gauges last-write-win,
histograms combine their running aggregates and reservoirs), which is
how pool workers ship their metrics back to the parent at chunk
boundaries (see :mod:`repro.obs.aggregate` and
:mod:`repro.core.parallel`).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Iterable, Mapping


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value; the last ``set`` wins."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if larger (high-water marks)."""
        with self._lock:
            if value > self._value:
                self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


#: seed folded into the index hash below — any odd 64-bit constant works;
#: this is the splitmix64 increment, chosen for its avalanche behaviour
_RESERVOIR_SEED = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _index_hash(i: int) -> int:
    """splitmix64 finaliser of observation index ``i`` — the deterministic
    stand-in for the random draw of reservoir sampling (Algorithm R)."""
    z = (i * _RESERVOIR_SEED + _RESERVOIR_SEED) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def percentile_of(samples: "Iterable[float]", q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``samples``.

    The single quantile definition shared by :meth:`Histogram.percentile`
    and the OpenMetrics renderer (:mod:`repro.obs.live`), so live and
    post-run exports agree bit-for-bit on the same reservoir.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    window = sorted(samples)
    if not window:
        return float("nan")
    rank = max(1, -(-int(q * len(window)) // 100))  # ceil without float
    rank = min(max(rank, 1), len(window))
    return window[rank - 1]


class Histogram:
    """Running aggregates plus a deterministic reservoir sample.

    ``count``/``sum``/``min``/``max`` cover every observation ever made.
    ``percentile`` is computed over a reservoir of up to ``max_samples``
    values drawn by **deterministic reservoir sampling**: observation
    ``i`` (0-based) replaces slot ``_index_hash(i) % (i + 1)`` when that
    lands inside the reservoir — the classic Algorithm R with the random
    draw replaced by a seeded integer hash of the observation index.
    Identical observation sequences therefore yield identical reservoirs
    (no RNG state, no wall-clock dependence), and the reservoir
    approximates a uniform sample over the *whole* stream instead of the
    most recent window — long runs no longer report tail-only quantiles.
    """

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max", "_samples", "max_samples")

    def __init__(self, max_samples: int = 4096) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._samples: list[float] = []
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = self._count  # 0-based index of this observation
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._samples) < self.max_samples:
                self._samples.append(value)
            else:
                slot = _index_hash(index) % (index + 1)
                if slot < self.max_samples:
                    self._samples[slot] = value

    def observe_many(self, values: "Iterable[float]") -> None:
        """Record a batch of observations under one lock acquisition.

        State after the call is bit-identical to calling :meth:`observe`
        once per value in order (same counts, same reservoir slots), so
        hot loops can batch without changing any exported number.
        """
        with self._lock:
            samples = self._samples
            max_samples = self.max_samples
            for value in values:
                value = float(value)
                index = self._count
                self._count += 1
                self._sum += value
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
                if len(samples) < max_samples:
                    samples.append(value)
                else:
                    slot = _index_hash(index) % (index + 1)
                    if slot < max_samples:
                        samples[slot] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def min(self) -> float:
        return self._min if self._count else float("nan")

    @property
    def max(self) -> float:
        return self._max if self._count else float("nan")

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window."""
        with self._lock:
            window = list(self._samples)
        return percentile_of(window, q)

    def summary(self, quantiles: Iterable[float] = (50.0, 95.0, 99.0)) -> dict:
        """Exportable aggregate view used by registry snapshots.

        ``estimator`` names how the quantiles were obtained:
        ``"exact"`` while every observation is still in the reservoir,
        ``"reservoir"`` once the stream outgrew it and the quantiles are
        estimates over a deterministic uniform sample.  The p99 exists
        for the serving latency SLO (``serve.request_seconds``); it is
        as meaningful for every other histogram, so all summaries
        expose it.
        """
        with self._lock:
            sampled = len(self._samples)
        out: dict = {
            "count": self._count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "estimator": "exact" if self._count <= self.max_samples else "reservoir",
            "sampled": sampled,
        }
        for q in quantiles:
            key = f"p{q:g}".replace(".", "_")
            out[key] = self.percentile(q)
        return out

    # ------------------------------------------------------------------
    # cross-process merge support
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """The mergeable state of this histogram (picklable plain data)."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "samples": list(self._samples),
            }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        Running aggregates combine exactly.  The two reservoirs combine
        by keeping every sample when they fit, otherwise by an evenly
        strided subsample of each side proportional to its observation
        count — deterministic, and approximately weight-preserving.
        """
        other_count = int(state["count"])
        if other_count == 0:
            return
        other_samples = [float(v) for v in state["samples"]]
        with self._lock:
            own_count = self._count
            self._count += other_count
            self._sum += float(state["sum"])
            self._min = min(self._min, float(state["min"]))
            self._max = max(self._max, float(state["max"]))
            if len(self._samples) + len(other_samples) <= self.max_samples:
                self._samples.extend(other_samples)
                return
            self._samples = _merge_reservoirs(
                self._samples, own_count, other_samples, other_count, self.max_samples
            )


def _strided_subsample(samples: "list[float]", keep: int) -> "list[float]":
    """``keep`` evenly spaced elements of ``samples`` (deterministic)."""
    n = len(samples)
    if keep >= n:
        return list(samples)
    if keep <= 0:
        return []
    return [samples[(i * n) // keep] for i in range(keep)]


def _merge_reservoirs(
    a: "list[float]",
    count_a: int,
    b: "list[float]",
    count_b: int,
    max_samples: int,
) -> "list[float]":
    """Combine two reservoirs into one of at most ``max_samples``.

    Each side contributes slots proportional to the observation count it
    represents (clamped so neither side is over-asked), keeping the
    merged reservoir an approximately uniform sample of the union.
    """
    total = count_a + count_b
    keep_a = round(max_samples * count_a / total) if total else 0
    keep_a = min(max(keep_a, max_samples - len(b)), len(a), max_samples)
    keep_b = min(max_samples - keep_a, len(b))
    return _strided_subsample(a, keep_a) + _strided_subsample(b, keep_b)


class MetricsRegistry:
    """Named metrics with get-or-create access and JSON export."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # get-or-create accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, self._counters, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, self._gauges, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, self._histograms, Histogram)

    def _get_or_create(self, name: str, table: dict, factory):
        if not name:
            raise ValueError("metric name must be non-empty")
        metric = table.get(name)
        if metric is not None:
            return metric
        with self._lock:
            metric = table.get(name)
            if metric is None:
                self._check_name_free(name, table)
                metric = factory()
                table[name] = metric
            return metric

    def _check_name_free(self, name: str, target: dict) -> None:
        for table, kind in (
            (self._counters, "counter"),
            (self._gauges, "gauge"),
            (self._histograms, "histogram"),
        ):
            if table is not target and name in table:
                raise ValueError(f"metric {name!r} already registered as a {kind}")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict view of every metric, safe to serialise."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def to_json(self, indent: int = 1) -> str:
        """The snapshot as JSON (NaN-free: empty aggregates become null)."""

        def scrub(obj):
            if isinstance(obj, dict):
                return {k: scrub(v) for k, v in obj.items()}
            if isinstance(obj, float) and obj != obj:  # NaN
                return None
            return obj

        return json.dumps(scrub(self.snapshot()), indent=indent, sort_keys=True)

    def mergeable_snapshot(self, *, reset: bool = False) -> dict:
        """Every metric as mergeable plain data (see :meth:`merge`).

        With ``reset=True`` the registry is cleared in the same locked
        section, so the export is a *delta*: repeated calls partition the
        observation stream without loss or double counting — exactly what
        a pool worker shipping metrics at chunk boundaries needs.
        """
        with self._lock:
            out = {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.state() for n, h in sorted(self._histograms.items())
                },
            }
            if reset:
                self._counters.clear()
                self._gauges.clear()
                self._histograms.clear()
            return out

    def merge(self, delta: Mapping[str, Any]) -> None:
        """Fold a :meth:`mergeable_snapshot` delta into this registry.

        Counters add, gauges last-write-win (arrival order — per-process
        values are not kept apart; record per-process state in histograms
        if the distinction matters), histograms merge aggregates and
        reservoirs via :meth:`Histogram.merge_state`.
        """
        for name, value in delta.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, state in delta.get("histograms", {}).items():
            self.histogram(name).merge_state(state)

    def reset(self) -> None:
        """Drop every metric (tests and fresh profiling runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: the process-wide default registry the instrumentation writes to
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local default registry."""
    return _REGISTRY


def _reinit_locks_after_fork() -> None:
    """Re-create every metric/registry lock in a forked child.

    ``fork`` clones only the calling thread; a lock held by any *other*
    parent thread at fork time stays locked forever in the child.  Fresh
    locks are safe because the child is single-threaded at this point —
    nothing can hold them yet.
    """
    registry = _REGISTRY
    registry._lock = threading.RLock()
    for table in (registry._counters, registry._gauges, registry._histograms):
        for metric in table.values():
            metric._lock = threading.Lock()


if hasattr(os, "register_at_fork"):  # absent on some platforms (Windows)
    os.register_at_fork(after_in_child=_reinit_locks_after_fork)

"""Cross-process metric/span aggregation for pool workers.

The metrics registry and span buffer are process-local, so everything a
pool worker records during SSF extraction — the four per-stage
histograms of Algs. 1–3, cache counters, worker-init spans — used to
die with the worker.  This module is the shipping protocol that brings
it home:

* the parent captures its observability switches with
  :func:`parent_obs_state` and passes them through the pool initializer;
* each worker applies them (:func:`apply_worker_obs_state`) so its
  instrumentation records exactly when the parent's does;
* at every chunk boundary the worker drains its registry *as a delta*
  plus any retained span records into one picklable payload
  (:func:`collect_worker_payload`) that rides back piggybacked on the
  chunk result;
* the parent folds each payload into its own registry and span buffer
  (:func:`merge_worker_payload`), tagging worker spans with their origin
  pid, so one snapshot / one trace describes the whole run — including
  chunks that were retried on a respawned pool (their payloads arrive
  from the surviving workers) and chunks extracted in-parent after
  retries were exhausted (recorded directly in the parent registry).

Merge semantics are those of
:meth:`repro.obs.metrics.MetricsRegistry.merge`: counters add, gauges
last-write-win, histograms combine running aggregates exactly and
reservoirs approximately.  Because worker deltas reset the worker
registry in the same locked section, a chunk's activity is shipped
exactly once — the merged ``parallel.pairs_extracted`` counter equals
the number of pairs actually extracted.

The parent-side counter ``obs.worker_payloads`` counts merged payloads;
``obs.worker_payload_spans`` counts shipped span records.
"""

from __future__ import annotations

import os
from typing import Any, Mapping

from repro.obs import live, trace
from repro.obs.metrics import get_registry

__all__ = [
    "ObsState",
    "apply_worker_obs_state",
    "collect_worker_payload",
    "merge_worker_payload",
    "parent_obs_state",
]

#: (observability enabled, span recording enabled) — the parent switches
#: a pool initializer forwards to workers
ObsState = tuple[bool, bool]


def parent_obs_state() -> ObsState:
    """The switches to forward to pool workers at initializer time."""
    return (trace.enabled(), trace.recording())


def apply_worker_obs_state(state: ObsState) -> None:
    """Adopt the parent's observability switches (worker initializer).

    Starts the worker from a clean slate — a pool worker reused across
    rounds must never re-ship what an earlier drain already shipped, and
    a forked worker inherits the parent's buffers, which belong to the
    parent.
    """
    enabled, recording = state
    get_registry().reset()
    trace.drain_span_records()
    if enabled:
        trace.enable()
    else:
        trace.disable()
    trace.record_spans(recording)


def collect_worker_payload() -> "dict[str, Any] | None":
    """Drain this worker's metrics delta + span records into a payload.

    Returns ``None`` when observability is off, so the disabled path
    ships nothing and costs nothing beyond one flag check.

    Each payload carries the worker's resident set size as the gauge
    ``proc.worker_rss_bytes.pid<pid>`` — per-pid names survive the
    last-write-wins gauge merge, so the parent's live exposition shows
    one RSS gauge per worker that ever shipped a chunk (fleet-wide
    memory, not just the parent's own).
    """
    if not trace.enabled():
        return None
    registry = get_registry()
    rss = live.read_rss_bytes()
    if rss > 0.0:
        registry.gauge(f"proc.worker_rss_bytes.pid{os.getpid()}").set(rss)
    spans = trace.drain_span_records() if trace.recording() else []
    return {
        "pid": os.getpid(),
        "metrics": registry.mergeable_snapshot(reset=True),
        "spans": spans,
    }


def merge_worker_payload(payload: "Mapping[str, Any] | None") -> None:
    """Fold one worker payload into the parent registry and span buffer."""
    if payload is None:
        return
    registry = get_registry()
    registry.merge(payload["metrics"])
    registry.counter("obs.worker_payloads").inc()
    spans = payload.get("spans") or []
    if spans:
        registry.counter("obs.worker_payload_spans").inc(len(spans))
        trace.extend_span_records([dict(record) for record in spans])

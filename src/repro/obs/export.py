"""Chrome Trace Event export for recorded spans.

Serialises the span records retained by :mod:`repro.obs.trace` (and the
worker records merged in by :mod:`repro.obs.aggregate`) to the JSON
Object Format of the Trace Event specification, the interchange format
read by Perfetto (https://ui.perfetto.dev) and the legacy
``chrome://tracing`` viewer.

Every span becomes one Complete event (``"ph": "X"``) with microsecond
``ts``/``dur``; each process additionally gets a ``process_name``
metadata event so parent and pool workers are labelled lanes in the UI.
Timestamps are normalised to the earliest span in the export — Chrome
trace ``ts`` values only need to share an origin, and
``time.perf_counter()`` (the span clock) is system-wide monotonic on
Linux, so parent and worker lanes line up on one timeline.

Typical flow::

    repro profile --dataset co-author --trace-out trace.json
    # then open trace.json in https://ui.perfetto.dev

See docs/OBSERVABILITY.md for the full walkthrough.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping, Sequence

from repro.obs import trace
from repro.obs.live import atomic_write_text

__all__ = ["trace_events", "validate_trace", "write_trace"]

#: event category stamped on every span event
CATEGORY = "repro"


def _tid_alias(pid: int, tid: int, aliases: "dict[tuple[int, int], int]") -> int:
    """Small per-process thread ids (raw idents are unreadable 15-digit ints)."""
    key = (pid, tid)
    if key not in aliases:
        aliases[key] = sum(1 for (p, _t) in aliases if p == pid) + 1
    return aliases[key]


def trace_events(
    records: "Sequence[Mapping[str, Any]] | None" = None,
    *,
    parent_pid: "int | None" = None,
) -> "list[dict[str, Any]]":
    """Span records as a Trace Event list (Complete + metadata events).

    Args:
        records: span records (see :mod:`repro.obs.trace`); defaults to
            draining the process buffer.
        parent_pid: the pid labelled ``repro parent`` in the viewer;
            defaults to this process.  Every other pid seen in the
            records is labelled ``repro worker <pid>``.
    """
    if records is None:
        records = trace.drain_span_records()
    if parent_pid is None:
        parent_pid = os.getpid()
    ordered = sorted(records, key=lambda r: (float(r["ts"]), int(r["pid"])))
    origin = float(ordered[0]["ts"]) if ordered else 0.0
    events: "list[dict[str, Any]]" = []
    seen_pids: "list[int]" = []
    aliases: "dict[tuple[int, int], int]" = {}
    for record in ordered:
        pid = int(record["pid"])
        if pid not in seen_pids:
            seen_pids.append(pid)
            name = "repro parent" if pid == parent_pid else f"repro worker {pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        args: "dict[str, Any]" = {"path": str(record.get("path", record["name"]))}
        for key, value in sorted(dict(record.get("tags", {})).items()):
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        events.append(
            {
                "name": str(record["name"]),
                "cat": CATEGORY,
                "ph": "X",
                "ts": (float(record["ts"]) - origin) * 1e6,
                "dur": float(record["dur"]) * 1e6,
                "pid": pid,
                "tid": _tid_alias(pid, int(record["tid"]), aliases),
                "args": args,
            }
        )
    return events


def write_trace(
    path: str,
    records: "Sequence[Mapping[str, Any]] | None" = None,
    *,
    parent_pid: "int | None" = None,
) -> int:
    """Write records as Trace Event JSON Object Format; return event count.

    The file loads directly in Perfetto / ``chrome://tracing``.  The
    write is atomic (tmp + ``os.replace``): a run killed mid-export
    never leaves a truncated, viewer-rejecting file behind.
    """
    events = trace_events(records, parent_pid=parent_pid)
    dropped = trace.dropped_span_records()
    payload: "dict[str, Any]" = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.export",
            "droppedSpanRecords": dropped,
        },
    }
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(events)


def validate_trace(payload: Mapping[str, Any]) -> "list[str]":
    """Schema problems in a trace payload (empty list = valid).

    Checks the Trace Event contract the viewers actually rely on:
    a ``traceEvents`` list whose members carry ``name``/``ph``/``pid``/
    ``tid``, numeric non-negative ``ts``+``dur`` on Complete events, and
    JSON-serialisable ``args``.
    """
    problems: "list[str]" = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: {key!r} must be a number >= 0")
        elif phase != "M":
            problems.append(f"{where}: unexpected phase {phase!r}")
        try:
            json.dumps(event.get("args", {}))
        except (TypeError, ValueError):
            problems.append(f"{where}: args not JSON-serialisable")
    return problems

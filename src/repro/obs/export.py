"""Chrome Trace Event export for recorded spans.

Serialises the span records retained by :mod:`repro.obs.trace` (and the
worker records merged in by :mod:`repro.obs.aggregate`) to the JSON
Object Format of the Trace Event specification, the interchange format
read by Perfetto (https://ui.perfetto.dev) and the legacy
``chrome://tracing`` viewer.

Every span becomes one Complete event (``"ph": "X"``) with microsecond
``ts``/``dur``; each process additionally gets a ``process_name``
metadata event so parent and pool workers are labelled lanes in the UI.
Timestamps are normalised to the earliest span in the export — Chrome
trace ``ts`` values only need to share an origin, and
``time.perf_counter()`` (the span clock) is system-wide monotonic on
Linux, so parent and worker lanes line up on one timeline.

Typical flow::

    repro profile --dataset co-author --trace-out trace.json
    # then open trace.json in https://ui.perfetto.dev

See docs/OBSERVABILITY.md for the full walkthrough.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping, Sequence

from repro.obs import trace
from repro.obs.live import atomic_write_text

__all__ = ["trace_events", "validate_flow_events", "validate_trace", "write_trace"]

#: event category stamped on every span event
CATEGORY = "repro"

#: category of the per-trace flow events (request arrows in Perfetto)
FLOW_CATEGORY = "repro.flow"


def _record_trace_ids(record: "Mapping[str, Any]") -> "list[str]":
    """Every trace a span record belongs to: its own ``trace_id`` plus
    any fan-in memberships (a batch span records the trace ids of all
    the requests it served under ``trace_ids``)."""
    out: "list[str]" = []
    own = record.get("trace_id")
    if own is not None:
        out.append(str(own))
    for tid in record.get("trace_ids", ()):
        if str(tid) not in out:
            out.append(str(tid))
    return out


def _tid_alias(pid: int, tid: int, aliases: "dict[tuple[int, int], int]") -> int:
    """Small per-process thread ids (raw idents are unreadable 15-digit ints)."""
    key = (pid, tid)
    if key not in aliases:
        aliases[key] = sum(1 for (p, _t) in aliases if p == pid) + 1
    return aliases[key]


def trace_events(
    records: "Sequence[Mapping[str, Any]] | None" = None,
    *,
    parent_pid: "int | None" = None,
) -> "list[dict[str, Any]]":
    """Span records as a Trace Event list (Complete + metadata events).

    Args:
        records: span records (see :mod:`repro.obs.trace`); defaults to
            draining the process buffer.
        parent_pid: the pid labelled ``repro parent`` in the viewer;
            defaults to this process.  Every other pid seen in the
            records is labelled ``repro worker <pid>``.
    """
    if records is None:
        records = trace.drain_span_records()
    if parent_pid is None:
        parent_pid = os.getpid()
    ordered = sorted(records, key=lambda r: (float(r["ts"]), int(r["pid"])))
    origin = float(ordered[0]["ts"]) if ordered else 0.0
    events: "list[dict[str, Any]]" = []
    seen_pids: "list[int]" = []
    aliases: "dict[tuple[int, int], int]" = {}
    flows: "dict[str, list[tuple[float, int, int]]]" = {}
    for record in ordered:
        pid = int(record["pid"])
        if pid not in seen_pids:
            seen_pids.append(pid)
            name = "repro parent" if pid == parent_pid else f"repro worker {pid}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        args: "dict[str, Any]" = {"path": str(record.get("path", record["name"]))}
        for key, value in sorted(dict(record.get("tags", {})).items()):
            args[key] = value if isinstance(value, (int, float, bool)) else str(value)
        for key in ("trace_id", "span_id", "parent_span_id"):
            if record.get(key) is not None:
                args[key] = str(record[key])
        ts_us = (float(record["ts"]) - origin) * 1e6
        tid_alias = _tid_alias(pid, int(record["tid"]), aliases)
        events.append(
            {
                "name": str(record["name"]),
                "cat": CATEGORY,
                "ph": "X",
                "ts": ts_us,
                "dur": float(record["dur"]) * 1e6,
                "pid": pid,
                "tid": tid_alias,
                "args": args,
            }
        )
        for trace_id in _record_trace_ids(record):
            flows.setdefault(trace_id, []).append((ts_us, pid, tid_alias))
    events.extend(_flow_events(flows))
    return events


def _flow_events(
    flows: "Mapping[str, list[tuple[float, int, int]]]",
) -> "list[dict[str, Any]]":
    """Per-trace flow arrows: one ``s`` (start) at the trace's first
    span, ``t`` (step) at each intermediate span, ``f`` (finish, binding
    enclosing — ``bp: "e"``) at the last.  Each flow event's
    ``pid``/``tid``/``ts`` coincide with a member Complete event, which
    is how the viewer binds the arrow to that slice; the ``id`` is the
    trace id, so selecting any slice of a request highlights the whole
    frontend→batch→extract→worker chain.  Single-span traces get no
    arrow (nothing to connect).
    """
    events: "list[dict[str, Any]]" = []
    for trace_id in sorted(flows):
        points = sorted(flows[trace_id])
        if len(points) < 2:
            continue
        for index, (ts_us, pid, tid) in enumerate(points):
            if index == 0:
                phase = "s"
            elif index == len(points) - 1:
                phase = "f"
            else:
                phase = "t"
            event: "dict[str, Any]" = {
                "name": trace_id,
                "cat": FLOW_CATEGORY,
                "ph": phase,
                "id": trace_id,
                "ts": ts_us,
                "pid": pid,
                "tid": tid,
            }
            if phase == "f":
                event["bp"] = "e"
            events.append(event)
    return events


def write_trace(
    path: str,
    records: "Sequence[Mapping[str, Any]] | None" = None,
    *,
    parent_pid: "int | None" = None,
) -> int:
    """Write records as Trace Event JSON Object Format; return event count.

    The file loads directly in Perfetto / ``chrome://tracing``.  The
    write is atomic (tmp + ``os.replace``): a run killed mid-export
    never leaves a truncated, viewer-rejecting file behind.
    """
    events = trace_events(records, parent_pid=parent_pid)
    dropped = trace.dropped_span_records()
    payload: "dict[str, Any]" = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs.export",
            "droppedSpanRecords": dropped,
        },
    }
    atomic_write_text(path, json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return len(events)


def validate_trace(payload: Mapping[str, Any]) -> "list[str]":
    """Schema problems in a trace payload (empty list = valid).

    Checks the Trace Event contract the viewers actually rely on:
    a ``traceEvents`` list whose members carry ``name``/``ph``/``pid``/
    ``tid``, numeric non-negative ``ts``+``dur`` on Complete events,
    ``ts`` + ``id`` on flow events (``s``/``t``/``f``), and
    JSON-serialisable ``args``.
    """
    problems: "list[str]" = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(f"{where}: {key!r} must be a number >= 0")
        elif phase in ("s", "t", "f"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: 'ts' must be a number >= 0")
            if not event.get("id"):
                problems.append(f"{where}: flow event missing 'id'")
        elif phase != "M":
            problems.append(f"{where}: unexpected phase {phase!r}")
        try:
            json.dumps(event.get("args", {}))
        except (TypeError, ValueError):
            problems.append(f"{where}: args not JSON-serialisable")
    return problems


def validate_flow_events(payload: "Mapping[str, Any]") -> "list[str]":
    """Problems with the per-trace flow structure (empty list = valid).

    For every flow ``id``: exactly one start (``s``) and one finish
    (``f``), the start at or before every step and the finish at or
    after, and every flow event anchored to a Complete event — same
    pid/tid, ``ts`` inside the slice — because an unanchored arrow
    silently renders nowhere in the viewer.
    """
    problems: "list[str]" = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    slices: "dict[tuple[int, int], list[tuple[float, float]]]" = {}
    for event in events:
        if isinstance(event, dict) and event.get("ph") == "X":
            key = (int(event["pid"]), int(event["tid"]))
            start = float(event["ts"])
            slices.setdefault(key, []).append((start, start + float(event["dur"])))
    flows: "dict[str, dict[str, list[float]]]" = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict) or event.get("ph") not in ("s", "t", "f"):
            continue
        flow_id = str(event.get("id"))
        ts = float(event.get("ts", -1.0))
        flows.setdefault(flow_id, {"s": [], "t": [], "f": []})[
            str(event["ph"])
        ].append(ts)
        key = (int(event["pid"]), int(event["tid"]))
        anchored = any(
            start <= ts <= end for start, end in slices.get(key, ())
        )
        if not anchored:
            problems.append(
                f"event {index}: flow {flow_id!r} not anchored to any "
                f"complete event on pid/tid {key}"
            )
    for flow_id, phases in sorted(flows.items()):
        if len(phases["s"]) != 1:
            problems.append(
                f"flow {flow_id!r}: expected exactly one start, got "
                f"{len(phases['s'])}"
            )
        if len(phases["f"]) != 1:
            problems.append(
                f"flow {flow_id!r}: expected exactly one finish, got "
                f"{len(phases['f'])}"
            )
        if phases["s"] and phases["f"]:
            start, finish = phases["s"][0], phases["f"][0]
            if start > finish:
                problems.append(
                    f"flow {flow_id!r}: start ts {start} after finish ts {finish}"
                )
            for step in phases["t"]:
                if not start <= step <= finish:
                    problems.append(
                        f"flow {flow_id!r}: step ts {step} outside "
                        f"[{start}, {finish}]"
                    )
    return problems

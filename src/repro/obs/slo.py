"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`Objective` is parsed from the one-line form operators write::

    serve.request p99 < 250ms over 5m
    serve.request availability 99.9% over 1h

Both forms reduce to the same error-budget arithmetic: a **latency**
objective declares that ``percentile/100`` of events must be faster than
the threshold (``p99 < 250ms`` ⇒ target 0.99, an event is *bad* when it
is slower), an **availability** objective declares the target fraction
of *ok* events directly.  The error budget is ``1 - target`` and the
**burn rate** of a window is ``bad_fraction / (1 - target)`` — burn 1.0
spends the budget exactly at the sustainable pace, burn 14.4 exhausts a
30-day budget in ~2 days.

Alerting follows the Google SRE-workbook multi-window multi-burn-rate
recipe: a **fast** page when both the 5-minute and 1-hour windows burn
at ≥ 14.4×, a **slow** page when both the 30-minute and 6-hour windows
burn at ≥ 6×.  The short window de-flaps the long one (no page for a
blip that already recovered); pairing two horizons catches both sudden
outages and slow leaks.  Alerts are *edge-triggered*: each (objective,
speed) pair latches after firing and re-arms only after a clean
evaluation, so a sustained breach pages exactly once.  Pages go through
:func:`repro.obs.live.emit_alert` (kind ``slo_fast_burn`` /
``slo_slow_burn``), the same structured-warning channel the streaming
drift monitors use.

The engine also tracks, per metric, the **slowest observation and its
trace id** — the exemplar the OpenMetrics endpoint attaches to the
latency histogram so an operator can jump metric → trace (see
:func:`repro.obs.live.render_openmetrics` and
:func:`set_exemplar_provider`).

Everything is injectable-clock and pure-data for determinism: tests
drive a scripted stream through :meth:`SLOEngine.observe` with a fake
clock and assert the page count exactly.
"""

from __future__ import annotations

import re
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Iterable, Sequence

from repro.obs.live import emit_alert, set_exemplar_provider
from repro.obs.metrics import MetricsRegistry, get_registry, percentile_of

__all__ = [
    "BURN_WINDOWS",
    "DEFAULT_SERVING_OBJECTIVES",
    "Objective",
    "SLOEngine",
    "configure_slo",
    "get_slo_engine",
    "slo_observe",
]

#: (speed, short window s, long window s, burn threshold) — SRE workbook
BURN_WINDOWS: "tuple[tuple[str, float, float, float], ...]" = (
    ("fast", 300.0, 3600.0, 14.4),
    ("slow", 1800.0, 21600.0, 6.0),
)

#: the serving path's default objectives (`repro serve --replay`)
DEFAULT_SERVING_OBJECTIVES: "tuple[str, ...]" = (
    "serve.request p99 < 250ms over 5m",
    "serve.request availability 99.9% over 1h",
)

_DURATION_RE = re.compile(r"^(\d+(?:\.\d+)?)(ms|s|m|h)$")
_DURATION_SCALE = {"ms": 1e-3, "s": 1.0, "m": 60.0, "h": 3600.0}

_LATENCY_RE = re.compile(
    r"^(?P<metric>[A-Za-z0-9_.]+)\s+p(?P<pct>\d+(?:\.\d+)?)\s*<\s*"
    r"(?P<threshold>\d+(?:\.\d+)?(?:ms|s|m|h))\s+over\s+(?P<window>\S+)$"
)
_AVAILABILITY_RE = re.compile(
    r"^(?P<metric>[A-Za-z0-9_.]+)\s+availability\s+"
    r"(?P<target>\d+(?:\.\d+)?)%\s+over\s+(?P<window>\S+)$"
)


def _parse_duration(text: str) -> float:
    match = _DURATION_RE.match(text)
    if not match:
        raise ValueError(
            f"unparseable duration {text!r} (expected e.g. 250ms, 5m, 1h)"
        )
    return float(match.group(1)) * _DURATION_SCALE[match.group(2)]


def _format_duration(seconds: float) -> str:
    if seconds < 1.0:
        return f"{seconds * 1e3:g}ms"
    if seconds < 60.0:
        return f"{seconds:g}s"
    if seconds < 3600.0:
        return f"{seconds / 60.0:g}m"
    return f"{seconds / 3600.0:g}h"


@dataclass(frozen=True)
class Objective:
    """One declarative SLO, normalised to error-budget form.

    Attributes:
        metric: the observed stream, e.g. ``serve.request``.
        kind: ``"latency"`` or ``"availability"``.
        target: required good-event fraction, e.g. 0.99 / 0.999.
        threshold_seconds: latency cut-off (0.0 for availability).
        window_seconds: the declared evaluation window.
    """

    metric: str
    kind: str
    target: float
    threshold_seconds: float
    window_seconds: float

    @classmethod
    def parse(cls, spec: str) -> "Objective":
        """Parse the one-line declarative form (see module docstring)."""
        text = " ".join(spec.split())
        match = _LATENCY_RE.match(text)
        if match:
            pct = float(match.group("pct"))
            if not 0.0 < pct < 100.0:
                raise ValueError(f"percentile must be in (0, 100), got p{pct:g}")
            return cls(
                metric=match.group("metric"),
                kind="latency",
                target=pct / 100.0,
                threshold_seconds=_parse_duration(match.group("threshold")),
                window_seconds=_parse_duration(match.group("window")),
            )
        match = _AVAILABILITY_RE.match(text)
        if match:
            target = float(match.group("target")) / 100.0
            if not 0.0 < target < 1.0:
                raise ValueError(
                    f"availability target must be in (0, 100)%, got {target:%}"
                )
            return cls(
                metric=match.group("metric"),
                kind="availability",
                target=target,
                threshold_seconds=0.0,
                window_seconds=_parse_duration(match.group("window")),
            )
        raise ValueError(
            f"unparseable objective {spec!r}; expected "
            "'<metric> pN < <duration> over <window>' or "
            "'<metric> availability N% over <window>'"
        )

    def format(self) -> str:
        """The canonical one-line form (round-trips through parse)."""
        window = _format_duration(self.window_seconds)
        if self.kind == "latency":
            pct = self.target * 100.0
            return (
                f"{self.metric} p{pct:g} < "
                f"{_format_duration(self.threshold_seconds)} over {window}"
            )
        return f"{self.metric} availability {self.target * 100.0:g}% over {window}"

    def is_bad(self, value: float, ok: bool) -> bool:
        """Whether one observation spends error budget."""
        if self.kind == "latency":
            return (not ok) or value >= self.threshold_seconds
        return not ok

    @property
    def slug(self) -> str:
        """Gauge-name stem, e.g. ``serve.request`` + latency -> that pair."""
        return f"{self.metric}.{self.kind}"


#: one observation: (timestamp, value, ok, trace_id)
_Sample = "tuple[float, float, bool, str | None]"

#: per-metric window cap — at serving rates this spans hours; the cap
#: only bounds pathological streams (the oldest samples age out anyway)
MAX_WINDOW_SAMPLES = 100_000


class SLOEngine:
    """Sliding-window evaluation + burn-rate alerting for objectives.

    Thread-safe (the serving path observes from executor threads while
    the telemetry publisher evaluates from its ticker thread).  The
    clock is injectable so tests are deterministic; production uses
    ``time.monotonic``.
    """

    def __init__(
        self,
        objectives: "Iterable[Objective | str]",
        *,
        clock: "Callable[[], float] | None" = None,
        check_interval: float = 1.0,
    ) -> None:
        self.objectives: "list[Objective]" = [
            obj if isinstance(obj, Objective) else Objective.parse(obj)
            for obj in objectives
        ]
        if not self.objectives:
            raise ValueError("need at least one objective")
        if check_interval < 0:
            raise ValueError(f"check_interval must be >= 0, got {check_interval}")
        self._clock: "Callable[[], float]" = (
            clock if clock is not None else time.monotonic
        )
        self._check_interval = check_interval
        self._lock = threading.Lock()
        self._windows: "dict[str, Deque[tuple[float, float, bool, str | None]]]" = {}
        self._worst: "dict[str, tuple[float, str | None, float]]" = {}
        self._latched: "dict[tuple[str, str], bool]" = {}
        self._alerts_fired: "list[dict[str, Any]]" = []
        self._last_check = float("-inf")

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def observe(
        self,
        metric: str,
        value: float,
        *,
        ok: bool = True,
        trace_id: "str | None" = None,
    ) -> None:
        """Record one event; periodically re-check burn-rate alerts."""
        now = self._clock()
        with self._lock:
            window = self._windows.get(metric)
            if window is None:
                window = self._windows[metric] = deque(maxlen=MAX_WINDOW_SAMPLES)
            window.append((now, value, ok, trace_id))
            worst = self._worst.get(metric)
            if worst is None or value > worst[0]:
                self._worst[metric] = (value, trace_id, now)
            due = now - self._last_check >= self._check_interval
            if due:
                self._last_check = now
        if due:
            self.check_alerts(now=now)
            # gauges ride the same throttle, so the live endpoint sees
            # repro_slo_* burn state without a dedicated publisher hook
            self.publish()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _window_stats(
        self,
        objective: Objective,
        horizon: float,
        now: float,
    ) -> "tuple[int, int]":
        """(events, bad events) within ``horizon`` seconds of ``now``."""
        window = self._windows.get(objective.metric)
        if not window:
            return 0, 0
        cutoff = now - horizon
        total = bad = 0
        for ts, value, ok, _trace in reversed(window):
            if ts < cutoff:
                break
            total += 1
            if objective.is_bad(value, ok):
                bad += 1
        return total, bad

    def _burn_rate(self, objective: Objective, horizon: float, now: float) -> float:
        total, bad = self._window_stats(objective, horizon, now)
        if total == 0:
            return 0.0
        budget = 1.0 - objective.target
        return (bad / total) / budget if budget > 0 else float("inf")

    def evaluate(self, now: "float | None" = None) -> "list[dict[str, Any]]":
        """Per-objective status over the declared window (plain data)."""
        ts = self._clock() if now is None else now
        statuses: "list[dict[str, Any]]" = []
        with self._lock:
            for objective in self.objectives:
                total, bad = self._window_stats(objective, objective.window_seconds, ts)
                budget = 1.0 - objective.target
                bad_fraction = bad / total if total else 0.0
                burn = bad_fraction / budget if budget > 0 else 0.0
                status: "dict[str, Any]" = {
                    "objective": objective.format(),
                    "metric": objective.metric,
                    "kind": objective.kind,
                    "window_seconds": objective.window_seconds,
                    "events": total,
                    "bad_events": bad,
                    "burn_rate": burn,
                    "budget_remaining": max(0.0, 1.0 - burn)
                    if budget > 0
                    else 0.0,
                }
                if objective.kind == "latency":
                    window = self._windows.get(objective.metric)
                    cutoff = ts - objective.window_seconds
                    values = (
                        [v for t, v, _ok, _tr in window if t >= cutoff]
                        if window
                        else []
                    )
                    status["percentile_seconds"] = (
                        percentile_of(values, objective.target * 100.0)
                        if values
                        else 0.0
                    )
                worst = self._worst.get(objective.metric)
                if worst is not None:
                    status["worst_value"] = worst[0]
                    status["worst_trace_id"] = worst[1]
                statuses.append(status)
        return statuses

    def check_alerts(self, now: "float | None" = None) -> "list[dict[str, Any]]":
        """Edge-triggered multi-window burn pages (fired this call)."""
        ts = self._clock() if now is None else now
        fired: "list[dict[str, Any]]" = []
        with self._lock:
            for objective in self.objectives:
                for speed, short_s, long_s, threshold in BURN_WINDOWS:
                    short_burn = self._burn_rate(objective, short_s, ts)
                    long_burn = self._burn_rate(objective, long_s, ts)
                    breaching = short_burn >= threshold and long_burn >= threshold
                    key = (objective.slug, speed)
                    if breaching and not self._latched.get(key, False):
                        self._latched[key] = True
                        record = {
                            "kind": f"slo_{speed}_burn",
                            "objective": objective.format(),
                            "speed": speed,
                            "short_window_seconds": short_s,
                            "long_window_seconds": long_s,
                            "short_burn_rate": short_burn,
                            "long_burn_rate": long_burn,
                            "threshold": threshold,
                        }
                        fired.append(record)
                        self._alerts_fired.append(record)
                    elif not breaching:
                        self._latched[key] = False
        for record in fired:
            emit_alert(
                str(record["kind"]),
                "%s burning %.1fx/%.1fx (threshold %.1fx)"
                % (
                    record["objective"],
                    record["short_burn_rate"],
                    record["long_burn_rate"],
                    record["threshold"],
                ),
                objective=str(record["objective"]),
                short_burn_rate=float(record["short_burn_rate"]),
                long_burn_rate=float(record["long_burn_rate"]),
                threshold=float(record["threshold"]),
            )
        return fired

    # ------------------------------------------------------------------
    # publication
    # ------------------------------------------------------------------
    def publish(self, registry: "MetricsRegistry | None" = None) -> None:
        """Set ``slo.*`` gauges (rendered as ``repro_slo_*``) from the
        current evaluation, so the live endpoint exposes burn state."""
        reg = registry if registry is not None else get_registry()
        for status in self.evaluate():
            stem = f"slo.{status['metric']}.{status['kind']}"
            reg.gauge(f"{stem}.burn_rate").set(float(status["burn_rate"]))
            reg.gauge(f"{stem}.budget_remaining").set(
                float(status["budget_remaining"])
            )
            reg.gauge(f"{stem}.events").set(float(status["events"]))
            reg.gauge(f"{stem}.bad_events").set(float(status["bad_events"]))

    def exemplars(self) -> "dict[str, tuple[str, float, float]]":
        """Slowest-event exemplars: raw histogram name -> (trace_id,
        value, ts); only metrics whose worst event carried a trace id."""
        out: "dict[str, tuple[str, float, float]]" = {}
        with self._lock:
            for metric, (value, trace_id, ts) in self._worst.items():
                if trace_id is not None:
                    out[f"{metric}_seconds"] = (trace_id, value, ts)
        return out

    def status_dict(self) -> "dict[str, Any]":
        """The report-embeddable shape (``repro report`` SLO section)."""
        with self._lock:
            alerts = list(self._alerts_fired)
        return {
            "objectives": self.evaluate(),
            "alerts_fired": alerts,
            "burn_windows": [
                {
                    "speed": speed,
                    "short_seconds": short_s,
                    "long_seconds": long_s,
                    "threshold": threshold,
                }
                for speed, short_s, long_s, threshold in BURN_WINDOWS
            ],
        }

    @property
    def alerts_fired(self) -> "list[dict[str, Any]]":
        with self._lock:
            return list(self._alerts_fired)


# ----------------------------------------------------------------------
# module-level engine (the serving path's single None-check hook)
# ----------------------------------------------------------------------
_ENGINE: "SLOEngine | None" = None


def configure_slo(
    objectives: "Sequence[Objective | str] | None",
    *,
    clock: "Callable[[], float] | None" = None,
    check_interval: float = 1.0,
) -> "SLOEngine | None":
    """Install (or, with ``None``, remove) the process SLO engine.

    When installed, its exemplars feed the OpenMetrics endpoint through
    :func:`repro.obs.live.set_exemplar_provider`.
    """
    global _ENGINE
    if objectives is None:
        _ENGINE = None
        set_exemplar_provider(None)
        return None
    _ENGINE = SLOEngine(objectives, clock=clock, check_interval=check_interval)
    set_exemplar_provider(_ENGINE.exemplars)
    return _ENGINE


def get_slo_engine() -> "SLOEngine | None":
    """The configured process engine, or ``None``."""
    return _ENGINE


def slo_observe(
    metric: str,
    value: float,
    *,
    ok: bool = True,
    trace_id: "str | None" = None,
) -> None:
    """Feed one event to the configured engine; a single ``None`` check
    when no engine is configured (hot-path-safe, like heartbeat_tick)."""
    if _ENGINE is None:
        return
    _ENGINE.observe(metric, value, ok=ok, trace_id=trace_id)

"""Replay harness — measured serving over a recorded event stream.

``repro serve --replay`` (and the CI serving smoke step) drive this
module: take a temporal network, hold out its tail as live edge events,
fit the offline recommender on the head, then replay the tail through
the async front-end while issuing recommendation requests from a
hot-user pool.  The harness reports sustained recommendations/sec and
exact p50/p95/p99 request latencies (measured around each ``await``,
independent of whether obs collection is enabled), in a result shape
:func:`repro.obs.bench.compare_results` can gate and
:func:`repro.obs.bench.append_history` can record under the
``"serving"`` tag.

The query stream is deliberately head-heavy (weights ``1/(rank+1)``
over the decayed-activity hub pool): production recommendation traffic
concentrates on active users, and that concentration is exactly what
the feature cache is designed to exploit — the replay exercises the
cache hit path, the invalidation path (events land near hot users) and
the batched extraction miss path in realistic proportion.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.core.feature import SSFConfig
from repro.graph.temporal import DynamicNetwork
from repro.obs import get_logger, heartbeat_tick, set_phase, span
from repro.robust.policy import RetryPolicy
from repro.serve.frontend import (
    DEFAULT_MAX_BATCH,
    AsyncScoringFrontend,
    ServingRecommender,
    ServingTimeout,
)
from repro.utils.rng import ensure_rng

Node = Hashable

_LOG = get_logger("serve.replay")


@dataclass(frozen=True)
class ReplayResult:
    """One replay run's measurements, bench-gate compatible."""

    nodes: int
    links: int
    queries: int
    completed: int
    timeouts: int
    ingested_events: int
    seconds: float
    recommendations_per_second: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    cache_hit_rate: float
    k: int
    seed: int

    def to_bench_result(self) -> dict[str, object]:
        """The ``repro bench --compare`` / history-record shape.

        ``pairs`` carries the query count (the serving unit of work) and
        ``pairs_per_second`` the sustained recommendation rate, so the
        existing throughput gate applies unchanged under the
        ``"serving"`` tag.
        """
        return {
            "nodes": self.nodes,
            "links": self.links,
            "pairs": self.queries,
            "k": self.k,
            "seed": self.seed,
            "tag": "serving",
            "backends": {
                "serving": {
                    "seconds": self.seconds,
                    "pairs_per_second": self.recommendations_per_second,
                    "p50_ms": self.p50_ms,
                    "p95_ms": self.p95_ms,
                    "p99_ms": self.p99_ms,
                    "cache_hit_rate": self.cache_hit_rate,
                    "timeouts": self.timeouts,
                    "ingested_events": self.ingested_events,
                }
            },
        }

    def summary(self) -> str:
        return (
            f"replayed {self.completed}/{self.queries} recommendations over "
            f"{self.nodes} nodes in {self.seconds:.2f}s "
            f"({self.recommendations_per_second:.0f} rec/s) | "
            f"latency p50={self.p50_ms:.2f}ms p95={self.p95_ms:.2f}ms "
            f"p99={self.p99_ms:.2f}ms | cache hit rate "
            f"{self.cache_hit_rate:.1%} | {self.ingested_events} events "
            f"ingested | {self.timeouts} timeouts"
        )


def split_replay_stream(
    network: DynamicNetwork, event_fraction: float = 0.2
) -> "tuple[DynamicNetwork, list[tuple[Node, Node, float]]]":
    """Split a network into (training history, replayable tail events).

    The cut falls on a timestamp boundary so the history is a clean
    observed window: the newest ``event_fraction`` of distinct stamps
    becomes the live stream, replayed in stamp order.
    """
    if not 0.0 < event_fraction < 1.0:
        raise ValueError(
            f"event_fraction must be in (0, 1), got {event_fraction}"
        )
    stamps = sorted(network.timestamp_set())
    if len(stamps) < 2:
        raise ValueError("need at least two distinct timestamps to replay")
    cut_index = max(1, int(round(len(stamps) * (1.0 - event_fraction))))
    cut_index = min(cut_index, len(stamps) - 1)
    cut = stamps[cut_index]
    history = network.slice(stamps[0], cut)
    tail = sorted(
        (edge for edge in network.edges() if edge[2] >= cut),
        key=lambda edge: (edge[2], repr(edge[0]), repr(edge[1])),
    )
    return history, tail


def run_replay(
    network: DynamicNetwork,
    *,
    queries: int = 500,
    concurrency: int = 16,
    top_n: int = 5,
    model: str = "linear",
    config: "SSFConfig | None" = None,
    hot_users: int = 32,
    event_fraction: float = 0.2,
    max_events: int = 200,
    events_per_batch: int = 4,
    max_batch: int = DEFAULT_MAX_BATCH,
    retry: "RetryPolicy | None" = None,
    seed: int = 0,
) -> ReplayResult:
    """Fit on the head of ``network``, replay its tail, measure serving.

    Training happens off the clock; the measured window covers request
    scoring AND event ingestion (with its cache invalidations and
    incremental snapshot merges), because that interleaving is the
    serving workload.
    """
    if queries < 1:
        raise ValueError(f"queries must be >= 1, got {queries}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if hot_users < 1:
        raise ValueError(f"hot_users must be >= 1, got {hot_users}")
    config = config or SSFConfig()
    set_phase("serve:replay")

    history, tail = split_replay_stream(network, event_fraction)
    if len(tail) > max_events:
        tail = tail[:max_events]
    _LOG.info(
        "replay: fitting on %d nodes / %d links, tail of %d events",
        history.number_of_nodes(),
        history.number_of_links(),
        len(tail),
    )
    with span("serve.replay.fit"):
        core = ServingRecommender.fit(
            history, config=config, model=model, seed=seed
        )
    heartbeat_tick("serve:fit", force=True)

    # head-heavy query stream over the decayed-activity hub pool
    pool = core.delta.most_active(hot_users)
    if not pool:
        raise ValueError("no active users to replay against")
    rng = ensure_rng(seed)
    weights = np.array([1.0 / (rank + 1) for rank in range(len(pool))])
    weights /= weights.sum()
    user_stream = [
        pool[int(i)] for i in rng.choice(len(pool), size=queries, p=weights)
    ]

    # spread ingest batches evenly through the query stream
    batches = [
        tail[lo : lo + events_per_batch]
        for lo in range(0, len(tail), max(1, events_per_batch))
    ]
    ingest_at: dict[int, list[tuple[Node, Node, float]]] = {}
    if batches:
        stride = max(1, queries // (len(batches) + 1))
        for index, batch in enumerate(batches):
            ingest_at[min((index + 1) * stride, queries - 1)] = batch

    latencies: list[float] = []
    timeouts = 0

    async def _one(frontend: AsyncScoringFrontend, user: Node) -> None:
        nonlocal timeouts
        started = time.perf_counter()
        try:
            await frontend.recommend(user, top_n=top_n)
        except ServingTimeout:
            timeouts += 1
            return
        latencies.append(time.perf_counter() - started)

    async def _drive() -> float:
        started = time.perf_counter()
        async with AsyncScoringFrontend(
            core, max_batch=max_batch, retry=retry
        ) as frontend:
            pending: "set[asyncio.Task[object]]" = set()
            for index, user in enumerate(user_stream):
                batch = ingest_at.get(index)
                if batch:
                    pending.add(asyncio.create_task(frontend.ingest(batch)))
                pending.add(asyncio.create_task(_one(frontend, user)))
                # one beat per admitted query — rec/s over completed
                # requests plus the live queue depth; the Heartbeat's own
                # min_interval throttles actual file writes
                elapsed = time.perf_counter() - started
                heartbeat_tick(
                    "serve:replay",
                    done=float(index + 1),
                    total=float(queries),
                    pairs_per_second=(
                        len(latencies) / elapsed if elapsed > 0 else None
                    ),
                    extra={"queue_depth": len(pending)},
                )
                if len(pending) >= concurrency:
                    done, pending = await asyncio.wait(
                        pending, return_when=asyncio.FIRST_COMPLETED
                    )
                    for task in done:
                        task.result()  # surface worker exceptions
            if pending:
                await asyncio.gather(*pending)
        return time.perf_counter() - started

    with span("serve.replay.drive", queries=queries):
        seconds = asyncio.run(_drive())
    heartbeat_tick("serve:done", force=True)

    completed = len(latencies)
    if completed:
        lat_ms = np.sort(np.asarray(latencies)) * 1e3
        p50, p95, p99 = (
            float(np.percentile(lat_ms, q)) for q in (50.0, 95.0, 99.0)
        )
    else:
        p50 = p95 = p99 = 0.0
    result = ReplayResult(
        nodes=core.delta.number_of_nodes(),
        links=core.delta.number_of_links(),
        queries=queries,
        completed=completed,
        timeouts=timeouts,
        ingested_events=sum(len(batch) for batch in batches),
        seconds=seconds,
        recommendations_per_second=completed / seconds if seconds else 0.0,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        cache_hit_rate=core.cache.hit_rate,
        k=config.k,
        seed=seed,
    )
    _LOG.info("%s", result.summary())
    return result

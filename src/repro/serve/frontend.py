"""Serving front-end: batched scoring over the delta substrate.

Two layers:

* :class:`ServingRecommender` — the synchronous core.  Holds a
  :class:`~repro.serve.delta.DeltaCSRSnapshot`, a trained model and a
  :class:`~repro.serve.cache.FeatureCache`; ``ingest`` appends edge
  events and invalidates exactly the cached pairs whose locality ball
  the events touched; ``recommend_many`` scores several users' requests
  through ONE :func:`repro.core.batch.batch_extract` call, probing the
  cache per pair and extracting only the misses.
* :class:`AsyncScoringFrontend` — the asyncio surface.  Concurrent
  ``await frontend.recommend(user)`` calls are coalesced by a single
  worker task into ``recommend_many`` batches (run in an executor so the
  event loop stays responsive), with per-request deadlines and bounded
  re-enqueue retries driven by the same
  :class:`~repro.robust.policy.RetryPolicy` the offline pool uses.

Ranking semantics match :class:`~repro.recommend.LinkRecommender` —
friends-of-friends candidate ball plus global hubs, model decision
scores, mergesort tie-stability — with one deliberate serving-side
difference: hub candidates rank by *decayed* activity
(:class:`~repro.serve.delta.DecayedInfluenceIndex`) instead of static
degree, so recency matters.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Hashable, Iterable, Sequence

import numpy as np

from repro.core.batch import batch_extract
from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.csr import CSRSnapshot
from repro.recommend import LinkRecommender, Suggestion
from repro.robust.policy import RetryPolicy
from repro.serve.cache import FeatureCache, PairKey, pair_key
from repro.serve.delta import DeltaCSRSnapshot, hop_ball
from repro.obs import get_logger, incr, observe, span
from repro.obs.rtrace import TraceContext, new_trace, rspan
from repro.obs.slo import slo_observe
from repro.obs.trace import add_span_record
from repro.obs.trace import enabled as obs_enabled
from repro.obs.trace import recording as obs_recording

Node = Hashable
Event = "tuple[Node, Node, float]"

_LOG = get_logger("serve.frontend")

#: most recommend() calls a single worker wake-up folds into one
#: scoring batch — bounds per-batch latency without starving throughput
DEFAULT_MAX_BATCH = 64


class ServingTimeout(TimeoutError):
    """A recommend() request exhausted its deadline and retry budget."""


class ServingRecommender:
    """Synchronous serving core: delta substrate + feature cache + model.

    Build with :meth:`from_recommender` to promote an offline
    :class:`~repro.recommend.LinkRecommender` into a serving instance,
    or :meth:`fit` to train and promote in one step.
    """

    def __init__(
        self,
        delta: DeltaCSRSnapshot,
        model: "object",
        config: "SSFConfig | None" = None,
        *,
        candidate_hops: int = 2,
        global_candidates: int = 20,
        invalidation_hops: int = 2,
        cache: "FeatureCache | None" = None,
        fingerprint: bool = False,
        verify: bool = False,
    ) -> None:
        if candidate_hops < 1:
            raise ValueError(f"candidate_hops must be >= 1, got {candidate_hops}")
        if global_candidates < 0:
            raise ValueError("global_candidates must be >= 0")
        if invalidation_hops < 1:
            raise ValueError(
                f"invalidation_hops must be >= 1, got {invalidation_hops}"
            )
        self.delta = delta
        self.model = model
        self.config = config or SSFConfig()
        self.candidate_hops = candidate_hops
        self.global_candidates = global_candidates
        self.invalidation_hops = invalidation_hops
        self.cache = cache if cache is not None else FeatureCache()
        self.fingerprint = fingerprint or verify
        self.verify = verify
        self._extractor: "SSFExtractor | None" = None
        self._ball_memo: dict[int, frozenset[int]] = {}
        # per-snapshot-generation memos: hub pool + candidate pools are
        # pure functions of the substrate, so they survive until ingest.
        # Each pool memo keeps the hop-ball ids it was generated from: a
        # later event changes the pool only if an endpoint sits in that
        # ball (a new edge cannot shorten any path, and cannot bring a
        # node within reach unless one endpoint already was).
        self._hubs_memo: "list[Node] | None" = None
        self._pool_memo: dict[Node, tuple[list[Node], frozenset[int]]] = {}
        # scored-result memo: between ingests the whole pipeline is a
        # deterministic function of (user, substrate), so serving a
        # memoised ranking is EXACT, not an approximation.  Each entry
        # keeps its full ranked list (sliced per top_n), the pair keys
        # it was scored from, and the present_time it was scored at.
        self._result_memo: dict[
            Node, tuple[list[Suggestion], frozenset[PairKey], float]
        ] = {}
        self.result_hits = 0
        self.result_misses = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_recommender(
        cls, recommender: LinkRecommender, **kwargs: "object"
    ) -> "ServingRecommender":
        """Promote a fitted offline recommender into a serving instance.

        The offline network seeds the delta substrate (one full freeze;
        everything after is incremental) and the trained model plus SSF
        config carry over unchanged.
        """
        config = recommender.extractor.config
        delta = DeltaCSRSnapshot.from_dynamic(
            recommender.network, theta=config.theta
        )
        kwargs.setdefault("candidate_hops", recommender.candidate_hops)
        kwargs.setdefault("global_candidates", recommender.global_candidates)
        return cls(delta, recommender.model, config, **kwargs)  # type: ignore[arg-type]

    @classmethod
    def fit(
        cls,
        network: "object",
        *,
        config: "SSFConfig | None" = None,
        model: str = "linear",
        seed: int = 0,
        **kwargs: "object",
    ) -> "ServingRecommender":
        """Train an offline recommender, then promote it for serving."""
        offline = LinkRecommender.fit(
            network,  # type: ignore[arg-type]
            config=config,
            model=model,
            seed=seed,
        )
        return cls.from_recommender(offline, **kwargs)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ingest(
        self,
        events: "Iterable[Event]",
        *,
        rctx: "TraceContext | None" = None,
    ) -> int:
        """Apply edge events; returns how many cached pairs they voided.

        An event lands "inside" a cached pair's locality ball exactly
        when one of its endpoints is a ball member, so invalidating by
        endpoint id through the cache's inverted index drops precisely
        the affected entries.  ``rctx`` (lint R304) threads the
        requesting trace across the executor boundary so the ingest
        span — and the invalidation spans under it — carry the
        request's trace id.
        """
        with rspan("serve.ingest", ctx=rctx) as ingest_span:
            touched = self.delta.apply(events)
            if not touched:
                return 0
            endpoints = {node_id for pair in touched for node_id in pair}
            dropped_keys = set(self.cache.invalidate_nodes(endpoints))
            ingest_span.annotate(
                touched=len(touched), invalidated=len(dropped_keys)
            )
        # the substrate moved: rebuild the extractor lazily, and drop
        # exactly the memoised balls/pools/results the events can have
        # changed — a ball changes only if it reaches an event endpoint
        # (a new edge cannot shorten paths, and cannot bring a node
        # within reach unless an endpoint already was), a pool
        # additionally whenever the hub ranking shifts, a ranked result
        # whenever its pool or any feature it was scored from moved
        self._extractor = None
        old_hubs = self._hubs_memo
        self._hubs_memo = None
        for node_id in [
            nid
            for nid, ball in self._ball_memo.items()
            if not endpoints.isdisjoint(ball)
        ]:
            del self._ball_memo[node_id]
        if old_hubs is not None and self._hubs() == old_hubs:
            pool_dropped = [
                user
                for user, (_, ball) in self._pool_memo.items()
                if not endpoints.isdisjoint(ball)
            ]
            for user in pool_dropped:
                del self._pool_memo[user]
            for user in [
                user
                for user, (_, keys, _) in self._result_memo.items()
                if user in pool_dropped or not dropped_keys.isdisjoint(keys)
            ]:
                del self._result_memo[user]
        else:
            self._pool_memo.clear()
            self._result_memo.clear()
        return len(dropped_keys)

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    @property
    def extractor(self) -> SSFExtractor:
        """The current-snapshot extractor (rebuilt after each ingest)."""
        if self._extractor is None or self.delta.pending_events:
            snapshot = self.delta.snapshot()
            self._extractor = SSFExtractor(
                snapshot,
                self.config,
                present_time=self.delta.scoring_time(),
                backend="csr",
            )
        return self._extractor

    def _snapshot(self) -> CSRSnapshot:
        return self.extractor.snapshot  # type: ignore[return-value]

    def _ball(self, node_id: int) -> frozenset[int]:
        ball = self._ball_memo.get(node_id)
        if ball is None:
            ball = frozenset(
                hop_ball(self._snapshot(), node_id, self.invalidation_hops).tolist()
            )
            self._ball_memo[node_id] = ball
        return ball

    def _hubs(self) -> list[Node]:
        if self._hubs_memo is None:
            self._hubs_memo = self.delta.most_active(self.global_candidates)
        return self._hubs_memo

    def candidates(self, user: Node) -> list[Node]:
        """Candidate partners: friends-of-friends ball plus decayed hubs."""
        memo = self._pool_memo.get(user)
        if memo is not None:
            return memo[0]
        if not self.delta.has_node(user):
            raise KeyError(f"user {user!r} not in network")
        snapshot = self._snapshot()
        user_id = self.delta.node_id(user)
        row_lo = int(snapshot.indptr[user_id])
        row_hi = int(snapshot.indptr[user_id + 1])
        partners = {
            self.delta.label_of(int(v)) for v in snapshot.indices[row_lo:row_hi]
        }
        ball_ids = hop_ball(snapshot, user_id, self.candidate_hops)
        out = {self.delta.label_of(int(n)) for n in ball_ids}
        out.update(self._hubs())
        pool = sorted(out - partners - {user}, key=repr)
        self._pool_memo[user] = (pool, frozenset(ball_ids.tolist()))
        return pool

    def recommend(
        self,
        user: Node,
        top_n: int = 10,
        *,
        rctx: "TraceContext | None" = None,
    ) -> list[Suggestion]:
        """Single-user convenience wrapper over :meth:`recommend_many`."""
        return self.recommend_many([(user, top_n)], rctx=rctx)[0]

    def recommend_many(
        self,
        queries: "Sequence[tuple[Node, int]]",
        *,
        rctx: "TraceContext | None" = None,
        members: "list[str] | None" = None,
    ) -> list[list[Suggestion]]:
        """Score several users' requests through one extraction batch.

        Per query the candidate pool is generated, each (user, candidate)
        pair is probed against the feature cache, and every miss across
        ALL queries lands in one :func:`batch_extract` call reusing the
        serving extractor's batched engine.  Fresh rows are cached with
        their locality ball before scoring.

        ``rctx`` (lint R304) is the batch's primary trace context —
        normally the first live member request — and ``members`` the
        trace ids of every request folded into this batch: the batch
        span fans back out into per-request flows at export time.
        """
        if not queries:
            return []
        for _, top_n in queries:
            if top_n < 1:
                raise ValueError(f"top_n must be >= 1, got {top_n}")
        extractor = self.extractor
        snapshot = self._snapshot()
        present = extractor.present_time

        # serve memoised rankings where the substrate has not moved
        final: "list[list[Suggestion] | None]" = [None] * len(queries)
        compute: list[tuple[int, Node, int]] = []
        for slot, (user, top_n) in enumerate(queries):
            memo = self._result_memo.get(user)
            if memo is not None:
                ranked, _, scored_at = memo
                drifted = (
                    self.cache.max_staleness is not None
                    and abs(present - scored_at) > self.cache.max_staleness
                )
                if not drifted:
                    final[slot] = ranked[:top_n]
                    self.result_hits += 1
                    incr("serve.results.hits")
                    continue
                del self._result_memo[user]
            self.result_misses += 1
            incr("serve.results.misses")
            compute.append((slot, user, top_n))
        # coalesce duplicate users: one computation fills every slot
        compute_map: "dict[Node, list[tuple[int, int]]]" = {}
        for slot, user, top_n in compute:
            compute_map.setdefault(user, []).append((slot, top_n))
        if not compute:
            incr("serve.queries", len(queries))
            return [result if result is not None else [] for result in final]

        pools: list[list[Node]] = []
        keyed: list[list[PairKey]] = []
        cached: dict[PairKey, np.ndarray] = {}
        missed: dict[PairKey, tuple[Node, Node]] = {}
        with rspan(
            "serve.score", ctx=rctx, members=members, queries=len(compute_map)
        ):
            with span("serve.cache_probe") as probe:
                for user in compute_map:
                    pool = self.candidates(user)
                    pools.append(pool)
                    keys: list[PairKey] = []
                    for cand in pool:
                        key = pair_key(user, cand)
                        keys.append(key)
                        if key in cached or key in missed:
                            continue
                        entry = self.cache.get(
                            key,
                            present_time=present,
                            snapshot=snapshot,
                            verify=self.verify,
                        )
                        if entry is not None:
                            cached[key] = entry.features
                        else:
                            missed[key] = (user, cand)
                    keyed.append(keys)
                probe.tags.update(hits=len(cached), misses=len(missed))

            if missed:
                miss_pairs = list(missed.values())
                fresh = batch_extract(
                    snapshot,
                    self.config,
                    miss_pairs,
                    present_time=present,
                    extractor=extractor,
                )
                for row, (key, (user, cand)) in zip(fresh, missed.items()):
                    ball = self._ball(self.delta.node_id(user)) | self._ball(
                        self.delta.node_id(cand)
                    )
                    self.cache.put(
                        key,
                        row,
                        ball,
                        present,
                        snapshot=snapshot,
                        fingerprint=self.fingerprint,
                    )
                    cached[key] = row

            # one model call for the whole batch, split back per query
            offsets = [0]
            rows: list[np.ndarray] = []
            for keys in keyed:
                rows.extend(cached[key] for key in keys)
                offsets.append(len(rows))
            scores = (
                self.model.decision_scores(np.vstack(rows))  # type: ignore[attr-defined]
                if rows
                else np.zeros(0)
            )
            for query_index, (user, slots) in enumerate(compute_map.items()):
                pool = pools[query_index]
                if not pool:
                    self._result_memo[user] = ([], frozenset(), present)
                    for slot, _ in slots:
                        final[slot] = []
                    continue
                lo, hi = offsets[query_index], offsets[query_index + 1]
                query_scores = scores[lo:hi]
                order = np.argsort(-query_scores, kind="mergesort")
                ranked = [
                    Suggestion(
                        node=pool[int(i)], score=float(query_scores[int(i)])
                    )
                    for i in order
                ]
                self._result_memo[user] = (
                    ranked,
                    frozenset(keyed[query_index]),
                    present,
                )
                for slot, top_n in slots:
                    final[slot] = ranked[:top_n]
        incr("serve.queries", len(queries))
        observe("serve.extract_pairs", float(len(missed)))
        return [result if result is not None else [] for result in final]


# ----------------------------------------------------------------------
# asyncio surface
# ----------------------------------------------------------------------
@dataclass
class _ScoreJob:
    user: Node
    top_n: int
    future: "asyncio.Future[list[Suggestion]]"
    enqueued: float = field(default_factory=time.perf_counter)
    cancelled: bool = False
    #: requester's trace context — carried as a field because the queue
    #: hand-off to the worker task does not propagate contextvars
    ctx: "TraceContext | None" = None


@dataclass
class _IngestJob:
    events: "list[tuple[Node, Node, float]]"
    future: "asyncio.Future[int]"
    ctx: "TraceContext | None" = None


def _record_request_span(
    ctx: "TraceContext | None",
    started: float,
    duration: float,
    *,
    user: Node,
    outcome: str,
) -> None:
    """Record the frontend-level ``serve.request`` span for one request.

    Emitted directly as a record (not a ``with`` block) because the
    request's lifetime spans awaits on the shared event-loop thread —
    holding a thread-local span open across an await would interleave
    with every other task's spans.  The record parents the whole
    request: the batch spans it was served by point back via trace id.
    """
    if ctx is None or not obs_recording():
        return
    add_span_record(
        {
            "name": "serve.request",
            "path": "serve.request",
            "ts": started,
            "dur": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "tags": {"user": str(user), "outcome": outcome},
            "trace_id": ctx.trace_id,
            "span_id": ctx.span_id,
            "parent_span_id": ctx.parent_id,
        }
    )


class AsyncScoringFrontend:
    """Coalescing asyncio front-end over a :class:`ServingRecommender`.

    Concurrent ``recommend`` awaits funnel into one queue; a single
    worker task drains up to ``max_batch`` jobs per wake-up and scores
    the contiguous run in ONE ``recommend_many`` call, executed in the
    default executor so the event loop keeps accepting requests while
    numpy works.  Ingest jobs flow through the same queue, which
    serialises substrate mutation against scoring without locks.

    Deadlines reuse :class:`~repro.robust.policy.RetryPolicy`:
    ``chunk_timeout`` bounds each attempt and ``max_retries`` extra
    re-enqueues are granted before :class:`ServingTimeout` is raised.
    A timed-out or caller-cancelled request is flagged so the worker
    drops it instead of scoring work nobody awaits.

    Usage::

        async with AsyncScoringFrontend(core) as frontend:
            suggestions = await frontend.recommend("alice", top_n=5)
    """

    def __init__(
        self,
        recommender: ServingRecommender,
        *,
        max_batch: int = DEFAULT_MAX_BATCH,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.recommender = recommender
        self.max_batch = max_batch
        self.retry = retry if retry is not None else RetryPolicy.from_env()
        self._queue: "asyncio.Queue[_ScoreJob | _IngestJob] | None" = None
        self._worker: "asyncio.Task[None] | None" = None

    async def __aenter__(self) -> "AsyncScoringFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: "object") -> None:
        await self.close()

    async def start(self) -> None:
        if self._worker is not None:
            return
        self._queue = asyncio.Queue()
        self._worker = asyncio.create_task(self._run(), name="repro-serve-worker")

    async def close(self) -> None:
        worker, self._worker = self._worker, None
        if worker is None:
            return
        worker.cancel()
        try:
            await worker
        except asyncio.CancelledError:
            pass
        queue, self._queue = self._queue, None
        if queue is not None:
            while not queue.empty():
                job = queue.get_nowait()
                if not job.future.done():
                    job.future.cancel()

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    async def recommend(
        self,
        user: Node,
        top_n: int = 10,
        *,
        rctx: "TraceContext | None" = None,
    ) -> list[Suggestion]:
        """Top-N suggestions for ``user``; batched behind the scenes.

        Raises :class:`ServingTimeout` once the per-attempt deadline
        (``retry.chunk_timeout``) has expired ``retry.max_retries + 1``
        times.  ``KeyError`` for unknown users fails fast, before any
        batch admission.

        ``rctx`` (lint R304) lets a caller attach the request to an
        existing trace; by default each request roots a fresh one.  The
        context is created ONCE — retries and the in-parent fallback all
        parent to the original request, never to a dead attempt.
        """
        queue = self._require_started()
        if not self.recommender.delta.has_node(user):
            raise KeyError(f"user {user!r} not in network")
        ctx = rctx
        if ctx is None and obs_enabled():
            ctx = new_trace()
        started = time.perf_counter()
        timeout = self.retry.chunk_timeout
        attempts = self.retry.max_retries + 1
        for attempt in range(attempts):
            job = _ScoreJob(
                user, top_n, asyncio.get_running_loop().create_future(), ctx=ctx
            )
            await queue.put(job)
            try:
                if timeout is None:
                    result = await job.future
                else:
                    result = await asyncio.wait_for(job.future, timeout)
            except asyncio.TimeoutError:
                job.cancelled = True
                incr("serve.request_timeouts")
                _LOG.warning(
                    "recommend(%r) attempt %d/%d timed out after %.1fs",
                    user,
                    attempt + 1,
                    attempts,
                    timeout,
                )
            except asyncio.CancelledError:
                job.cancelled = True
                raise
            else:
                _record_request_span(
                    ctx,
                    started,
                    time.perf_counter() - started,
                    user=user,
                    outcome="ok",
                )
                return result
        elapsed = time.perf_counter() - started
        _record_request_span(ctx, started, elapsed, user=user, outcome="timeout")
        slo_observe(
            "serve.request",
            elapsed,
            ok=False,
            trace_id=ctx.trace_id if ctx is not None else None,
        )
        raise ServingTimeout(
            f"recommend({user!r}) exceeded {timeout}s deadline "
            f"{attempts} time(s)"
        )

    async def ingest(
        self,
        events: "Iterable[Event]",
        *,
        rctx: "TraceContext | None" = None,
    ) -> int:
        """Apply edge events through the worker queue (ordered against
        in-flight scoring); returns the cache invalidation count.
        ``rctx`` (lint R304) attaches the ingest to an existing trace;
        by default it roots its own."""
        queue = self._require_started()
        ctx = rctx
        if ctx is None and obs_enabled():
            ctx = new_trace()
        job = _IngestJob(
            [(u, v, float(ts)) for u, v, ts in events],
            asyncio.get_running_loop().create_future(),
            ctx=ctx,
        )
        await queue.put(job)
        return await job.future

    def _require_started(self) -> "asyncio.Queue[_ScoreJob | _IngestJob]":
        if self._queue is None or self._worker is None:
            raise RuntimeError(
                "frontend not started — use 'async with' or await start()"
            )
        return self._queue

    # ------------------------------------------------------------------
    # worker
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        queue = self._queue
        assert queue is not None
        while True:
            jobs: list[_ScoreJob | _IngestJob] = [await queue.get()]
            while len(jobs) < self.max_batch and not queue.empty():
                jobs.append(queue.get_nowait())
            # process in arrival order, folding contiguous score runs
            # into single batches; ingest jobs act as barriers
            start = 0
            while start < len(jobs):
                job = jobs[start]
                if isinstance(job, _IngestJob):
                    await self._do_ingest(job)
                    start += 1
                    continue
                stop = start
                while stop < len(jobs) and isinstance(jobs[stop], _ScoreJob):
                    stop += 1
                await self._do_score(
                    [j for j in jobs[start:stop] if isinstance(j, _ScoreJob)]
                )
                start = stop

    async def _do_ingest(self, job: _IngestJob) -> None:
        loop = asyncio.get_running_loop()
        # run_in_executor does not propagate contextvars, so the trace
        # context crosses as an explicit kwarg (lint R304); identity-free
        # jobs keep the bare call shape (duck-typed cores need not know)
        if job.ctx is not None:
            call = partial(self.recommender.ingest, job.events, rctx=job.ctx)
        else:
            call = partial(self.recommender.ingest, job.events)
        try:
            dropped = await loop.run_in_executor(None, call)
        except Exception as exc:
            if not job.future.done():
                job.future.set_exception(exc)
            return
        if not job.future.done():
            job.future.set_result(dropped)

    async def _do_score(self, run: list[_ScoreJob]) -> None:
        live = [job for job in run if not job.cancelled and not job.future.done()]
        if not live:
            return
        observe("serve.batch_size", float(len(live)))
        loop = asyncio.get_running_loop()
        queries = [(job.user, job.top_n) for job in live]
        # the batch adopts the first live member's context as its parent
        # (so one trace id reads frontend→batch→extract→worker end to
        # end) and records every member's trace id for flow fan-out
        primary = next((job.ctx for job in live if job.ctx is not None), None)
        member_ids = [job.ctx.trace_id for job in live if job.ctx is not None]
        if primary is not None:
            call = partial(
                self.recommender.recommend_many,
                queries,
                rctx=primary,
                members=member_ids or None,
            )
        else:
            # identity-free batch (tracing off): keep the bare call shape
            call = partial(self.recommender.recommend_many, queries)
        try:
            results = await loop.run_in_executor(None, call)
        except Exception as exc:
            for job in live:
                if not job.future.done():
                    job.future.set_exception(exc)
            return
        now = time.perf_counter()
        for job, result in zip(live, results):
            if not job.future.done():
                job.future.set_result(result)
                latency = now - job.enqueued
                observe("serve.request_seconds", latency)
                slo_observe(
                    "serve.request",
                    latency,
                    ok=True,
                    trace_id=job.ctx.trace_id if job.ctx is not None else None,
                )

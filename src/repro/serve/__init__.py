"""Online serving layer: incremental ingestion + async recommendation.

The offline pipeline freezes one :class:`~repro.graph.csr.CSRSnapshot`
per experiment; serving cannot afford that rebuild per edge event.  This
package provides the serving-side substrate and surface:

* :class:`DeltaCSRSnapshot` — append edge events, materialise snapshots
  by vectorised delta merge, bit-identical to a full rebuild.
* :class:`DecayedInfluenceIndex` — O(1)-per-event decayed activity
  summaries for recency-aware candidate ranking.
* :class:`FeatureCache` — LRU feature cache with locality-ball
  invalidation keyed on :func:`~repro.serve.cache.pair_key`.
* :class:`ServingRecommender` / :class:`AsyncScoringFrontend` — the
  batched scoring core and its coalescing asyncio front-end.
* :func:`run_replay` — the measured replay harness behind
  ``repro serve --replay`` and the CI serving smoke step.

See docs/SERVING.md for the architecture and the cache's (documented)
approximations.
"""

from repro.serve.cache import DEFAULT_CACHE_ENTRIES, CacheEntry, FeatureCache, pair_key
from repro.serve.delta import DecayedInfluenceIndex, DeltaCSRSnapshot, hop_ball
from repro.serve.frontend import (
    DEFAULT_MAX_BATCH,
    AsyncScoringFrontend,
    ServingRecommender,
    ServingTimeout,
)
from repro.serve.replay import ReplayResult, run_replay, split_replay_stream

__all__ = [
    "AsyncScoringFrontend",
    "CacheEntry",
    "DecayedInfluenceIndex",
    "DeltaCSRSnapshot",
    "DEFAULT_CACHE_ENTRIES",
    "DEFAULT_MAX_BATCH",
    "FeatureCache",
    "ReplayResult",
    "ServingRecommender",
    "ServingTimeout",
    "hop_ball",
    "pair_key",
    "run_replay",
    "split_replay_stream",
]

"""Incremental snapshot ingestion — the serving layer's graph substrate.

:class:`CSRSnapshot.from_dynamic` re-walks the whole dict substrate on
every freeze (O(|V| + |E|) Python-loop work), which is the right cost
model for offline experiments that freeze one window per run and the
wrong one for a serving loop ingesting a few edge events per request
batch.  :class:`DeltaCSRSnapshot` keeps the last materialised snapshot's
arrays and merges pending events into them with vectorised sorted
inserts: per event batch the Python work is O(events·log) position
arithmetic plus O(|E|) ``np.insert`` memcpys — no per-node, per-slot
re-walk of the unchanged graph.

**Bit-identity contract.**  ``DeltaCSRSnapshot.snapshot()`` is
bit-identical to ``CSRSnapshot.from_dynamic`` over the equivalent
:class:`~repro.graph.temporal.DynamicNetwork` — same label order (nodes
enter in first-seen order, ``u`` before ``v``, exactly like
``add_edge``), same per-row neighbour sort, same per-slot stamp sort,
same dtypes.  The rebuilt≡delta differential suite
(``tests/serve/test_delta.py`` and the extended backend differential)
holds this across all six entry modes, because every downstream feature
guarantee (dict ≡ csr bit-parity) is inherited from it.

**Incremental influence.**  Two complementary mechanisms:

* Cached ``(present_time, θ)`` influence tables of the previous
  materialisation are *carried forward*: only the inserted stamps' slots
  get fresh ``math.exp(-θ·(present − t))`` entries (bit-identical to
  :func:`repro.core.influence.influence_array`'s own per-unique-stamp
  scalar evaluation), so a serving loop whose ``present_time`` is
  pinned between event batches never recomputes the full table.  Keys
  invalidated by a newer stamp (``t > present``) are dropped, exactly
  as a fresh build would refuse them.
* A :class:`DecayedInfluenceIndex` maintains per-link and per-node
  decayed influence *summaries* under new stamps: a stamp on link
  ``(u, v)`` rescales only that link's running sum by the θ-decay
  factor.  The serving recommender ranks hub candidates by this decayed
  activity instead of the static degree the offline recommender uses.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

import numpy as np

from repro.core.influence import DEFAULT_THETA, _check_theta
from repro.graph.csr import CSRSnapshot, concatenate_neighbor_slices
from repro.graph.temporal import DynamicNetwork, median_timestamp_gap
from repro.obs import get_logger, incr, observe, span

Node = Hashable
Event = "tuple[Node, Node, float]"

_LOG = get_logger("serve.delta")


class DecayedInfluenceIndex:
    """Numerically stable incremental decayed-influence summaries.

    Per undirected link and per node, stores ``(t_ref, S)`` where
    ``t_ref`` is the newest stamp seen and ``S = Σ_i exp(-θ·(t_ref −
    t_i))`` — the Eq. 3 influence sum referenced to that stamp.  A new
    stamp ``t`` on link ``(u, v)`` touches only that link's entry (and
    the two endpoint entries): when the stamp advances the reference,
    the running sum is rescaled once by the θ-decay factor,

        ``S ← S·exp(-θ·(t − t_ref)) + 1``,  ``t_ref ← t``

    and a query at serving time ``present`` is one more rescale,
    ``S·exp(-θ·(present − t_ref))``.  Every factor is ≤ 1, so the sum
    stays finite for arbitrarily large raw timestamps — the naive
    prefix-sum form ``Σ exp(θ·t_i)`` overflows float64 once
    ``θ·t ≳ 710``.

    These are serving-side *summaries* (hub ranking, admission
    heuristics), not the feature path: SSF features keep the exact
    ``influence_array`` evaluation so dict ≡ csr ≡ delta bit-parity is
    preserved.
    """

    __slots__ = ("_theta", "_pairs", "_nodes")

    def __init__(self, theta: float = DEFAULT_THETA) -> None:
        _check_theta(theta)
        self._theta = float(theta)
        self._pairs: dict[tuple[int, int], tuple[float, float]] = {}
        self._nodes: dict[int, tuple[float, float]] = {}

    @property
    def theta(self) -> float:
        return self._theta

    def observe(self, u_id: int, v_id: int, stamp: float) -> None:
        """Absorb one edge event: three O(1) entry updates."""
        a, b = (u_id, v_id) if u_id < v_id else (v_id, u_id)
        self._pairs[(a, b)] = self._bump(self._pairs.get((a, b)), stamp)
        self._nodes[u_id] = self._bump(self._nodes.get(u_id), stamp)
        self._nodes[v_id] = self._bump(self._nodes.get(v_id), stamp)

    def _bump(
        self, entry: "tuple[float, float] | None", stamp: float
    ) -> tuple[float, float]:
        if entry is None:
            return (stamp, 1.0)
        t_ref, total = entry
        if stamp >= t_ref:
            return (stamp, total * math.exp(-self._theta * (stamp - t_ref)) + 1.0)
        return (t_ref, total + math.exp(-self._theta * (t_ref - stamp)))

    def _at(self, entry: "tuple[float, float] | None", present: float) -> float:
        if entry is None:
            return 0.0
        t_ref, total = entry
        if present < t_ref:
            raise ValueError(
                f"present time {present} is before the newest stamp {t_ref}"
            )
        return total * math.exp(-self._theta * (present - t_ref))

    def pair_influence(self, u_id: int, v_id: int, present: float) -> float:
        """Decayed influence sum of one link at ``present`` (0.0 if absent)."""
        a, b = (u_id, v_id) if u_id < v_id else (v_id, u_id)
        return self._at(self._pairs.get((a, b)), present)

    def node_activity(self, node_id: int, present: float) -> float:
        """Decayed activity (influence over all incident links) of a node."""
        return self._at(self._nodes.get(node_id), present)

    def most_active(self, count: int, present: float) -> list[int]:
        """The ``count`` node ids with the highest decayed activity.

        Ties break on the node id, so the ranking is deterministic
        regardless of event arrival interleaving.  Vectorised: the
        serving loop re-ranks hubs after every ingest, so this is one
        numpy pass instead of a Python sort with per-entry ``exp``.
        """
        if count <= 0 or not self._nodes:
            return []
        ids = np.fromiter(self._nodes.keys(), dtype=np.int64, count=len(self._nodes))
        refs = np.empty(ids.size, dtype=np.float64)
        totals = np.empty(ids.size, dtype=np.float64)
        for slot, (t_ref, total) in enumerate(self._nodes.values()):
            refs[slot] = t_ref
            totals[slot] = total
        if present < refs.max():
            raise ValueError(
                f"present time {present} is before the newest stamp {refs.max()}"
            )
        activity = totals * np.exp(-self._theta * (present - refs))
        # lexsort's last key is primary: highest activity first, then id
        order = np.lexsort((ids, -activity))[:count]
        return [int(node_id) for node_id in ids[order]]


class DeltaCSRSnapshot:
    """Append-only edge-event ingestion over materialised CSR arrays.

    Usage::

        delta = DeltaCSRSnapshot.from_dynamic(history)
        delta.apply([("a", "b", 42.0)])
        snap = delta.snapshot()          # merges pending events, O(delta + memcpy)
        snap2 = delta.snapshot()         # no pending events: same object back

    ``snapshot()`` returns a plain :class:`CSRSnapshot`, so everything
    downstream (extractors, the batched engine, shared-memory transport)
    is oblivious to how the snapshot was produced.  Returned snapshots
    are immutable — later ``apply`` calls never mutate an already
    returned snapshot's arrays.
    """

    def __init__(self, theta: float = DEFAULT_THETA) -> None:
        self._labels: list[Node] = []
        self._id_of: dict[Node, int] = {}
        self._snapshot = CSRSnapshot(
            [],
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.int32),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
        )
        self._pending: list[tuple[int, int, float]] = []
        self._distinct_stamps: set[float] = set()
        self._last_ts: "float | None" = None
        self._num_links = 0
        self._events_applied = 0
        self.influence = DecayedInfluenceIndex(theta)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dynamic(
        cls, network: DynamicNetwork, theta: float = DEFAULT_THETA
    ) -> "DeltaCSRSnapshot":
        """Seed from an existing history (one full freeze, then deltas)."""
        out = cls(theta)
        snapshot = CSRSnapshot.from_dynamic(network)
        out._labels = list(snapshot.labels)
        out._id_of = {label: i for i, label in enumerate(out._labels)}
        out._snapshot = snapshot
        out._num_links = snapshot.number_of_links()
        # Seed the influence index from each undirected pair's stamps
        # (ascending order keeps every _bump factor ≤ 1).
        for u_id in range(len(out._labels)):
            for slot in range(
                int(snapshot.indptr[u_id]), int(snapshot.indptr[u_id + 1])
            ):
                v_id = int(snapshot.indices[slot])
                if v_id < u_id:
                    continue
                for stamp in snapshot.slot_timestamps(slot).tolist():
                    out.influence.observe(u_id, v_id, stamp)
                    out._distinct_stamps.add(stamp)
        if snapshot.ts.size:
            out._last_ts = snapshot.last_timestamp()
        return out

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def ensure_node(self, label: Node) -> int:
        """Ensure ``label`` exists (isolated until an event touches it)."""
        node_id = self._id_of.get(label)
        if node_id is None:
            node_id = len(self._labels)
            self._labels.append(label)
            self._id_of[label] = node_id
        return node_id

    def apply(self, events: "Iterable[Event]") -> list[tuple[int, int]]:
        """Append edge events; returns the touched ``(u_id, v_id)`` pairs.

        Validation mirrors :meth:`DynamicNetwork.add_edge` (no
        self-loops, finite stamps).  Node ids are assigned in first-seen
        order, ``u`` before ``v`` — the order ``from_dynamic`` would
        produce for the same event sequence, which is what keeps the
        label array (and therefore every downstream label-order
        tie-break) bit-identical to a full rebuild.
        """
        touched: list[tuple[int, int]] = []
        # under an active request context (rtrace) this span inherits
        # the ingesting request's trace id via the record provider
        with span("serve.delta_apply") as apply_span:
            for u, v, stamp in events:
                if u == v:
                    raise ValueError(f"self-loops are not allowed (node {u!r})")
                ts = float(stamp)
                if not math.isfinite(ts):
                    raise ValueError(f"timestamp must be finite, got {stamp!r}")
                u_id = self.ensure_node(u)
                v_id = self.ensure_node(v)
                self._pending.append((u_id, v_id, ts))
                self.influence.observe(u_id, v_id, ts)
                self._distinct_stamps.add(ts)
                if self._last_ts is None or ts > self._last_ts:
                    self._last_ts = ts
                self._num_links += 1
                self._events_applied += 1
                touched.append((u_id, v_id))
            apply_span.tags.update(events=len(touched))
        incr("serve.delta.events", len(touched))
        return touched

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def node_id(self, label: Node) -> int:
        try:
            return self._id_of[label]
        except KeyError:
            raise KeyError(f"node {label!r} not in snapshot") from None

    def label_of(self, node_id: int) -> Node:
        return self._labels[node_id]

    def has_node(self, label: Node) -> bool:
        return label in self._id_of

    def number_of_nodes(self) -> int:
        return len(self._labels)

    def number_of_links(self) -> int:
        return self._num_links

    @property
    def events_applied(self) -> int:
        return self._events_applied

    @property
    def pending_events(self) -> int:
        return len(self._pending)

    def last_timestamp(self) -> float:
        if self._last_ts is None:
            raise ValueError("snapshot has no links")
        return self._last_ts

    def scoring_time(self) -> float:
        """Serving ``present_time``: one observed median inter-stamp gap
        past the newest event (the streaming scorer's clock)."""
        if self._last_ts is None:
            return 1.0
        return self._last_ts + median_timestamp_gap(self._distinct_stamps)

    def most_active(self, count: int) -> list[Node]:
        """Hub candidates by *decayed* activity at the serving clock —
        recency-aware where the offline recommender's static degree
        ranking is not."""
        present = self.scoring_time() if self._last_ts is not None else 1.0
        return [
            self._labels[node_id]
            for node_id in self.influence.most_active(count, present)
        ]

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def snapshot(self) -> CSRSnapshot:
        """The current snapshot; merges pending events if any."""
        if not self._pending:
            return self._snapshot
        with span("serve.delta.materialize", events=len(self._pending)):
            self._snapshot = self._merge(self._snapshot, self._pending)
        observe("serve.delta.merge_events", len(self._pending))
        self._pending = []
        incr("serve.delta.materializations")
        return self._snapshot

    def _merge(
        self, old: CSRSnapshot, events: "list[tuple[int, int, float]]"
    ) -> CSRSnapshot:
        old_n = old.number_of_nodes()
        new_n = len(self._labels)

        # Group the delta's stamps per undirected pair, then split into
        # stamps landing on existing directed slots vs. brand-new slots.
        per_pair: dict[tuple[int, int], list[float]] = {}
        for u_id, v_id, ts in events:
            a, b = (u_id, v_id) if u_id < v_id else (v_id, u_id)
            per_pair.setdefault((a, b), []).append(ts)
        updates: list[tuple[int, list[float]]] = []
        fresh: dict[int, list[tuple[int, list[float]]]] = {}
        for (a, b), stamps in sorted(per_pair.items()):
            stamps.sort()
            slot = old.edge_slot(a, b) if a < old_n and b < old_n else -1
            if slot >= 0:
                updates.append((slot, stamps))
                updates.append((old.edge_slot(b, a), stamps))
            else:
                fresh.setdefault(a, []).append((b, stamps))
                fresh.setdefault(b, []).append((a, stamps))

        # Rows for nodes that arrived with this delta start empty.
        if new_n > old_n:
            indptr_ext = np.concatenate(
                [old.indptr, np.full(new_n - old_n, old.indptr[-1], dtype=np.int64)]
            )
        else:
            indptr_ext = old.indptr

        # New pair slots: sorted-merge positions into the old `indices`.
        # Rows ascending, columns ascending within a row, so positions
        # are non-decreasing and np.insert's keep-given-order semantics
        # at duplicate positions preserve the per-row neighbour sort.
        ins_pos: list[int] = []
        ins_col: list[int] = []
        ins_row: list[int] = []
        new_slot_stamps: list[list[float]] = []
        for row in sorted(fresh):
            row_lo = int(indptr_ext[row])
            row_slice = old.indices[row_lo : int(indptr_ext[row + 1])]
            for col, stamps in sorted(fresh[row]):
                ins_pos.append(row_lo + int(np.searchsorted(row_slice, col)))
                ins_col.append(col)
                ins_row.append(row)
                new_slot_stamps.append(stamps)

        old_ts_counts = np.diff(old.ts_indptr)
        if ins_pos:
            indices_new = np.insert(old.indices, ins_pos, ins_col)
            indptr_new = indptr_ext.copy()
            row_counts = np.bincount(
                np.asarray(ins_row, dtype=np.int64), minlength=new_n
            )
            indptr_new[1:] += np.cumsum(row_counts)
            ts_counts = np.insert(
                old_ts_counts, ins_pos, [len(s) for s in new_slot_stamps]
            )
        else:
            indices_new = old.indices
            indptr_new = indptr_ext
            ts_counts = old_ts_counts

        ins_pos_arr = np.asarray(ins_pos, dtype=np.int64)
        if updates:
            upd_slots = np.array([slot for slot, _ in updates], dtype=np.int64)
            upd_counts = np.array(
                [len(stamps) for _, stamps in updates], dtype=np.int64
            )
            # old slot s lands at s + (#new slots inserted at positions ≤ s)
            upd_new = upd_slots + np.searchsorted(ins_pos_arr, upd_slots, side="right")
            ts_counts = ts_counts.copy() if ts_counts is old_ts_counts else ts_counts
            ts_counts[upd_new] += upd_counts
        ts_indptr_new = np.zeros(ts_counts.size + 1, dtype=np.int64)
        np.cumsum(ts_counts, out=ts_indptr_new[1:])

        # Timestamp inserts, ordered by conceptual slot position: a new
        # slot inserted before old slot p sorts as (p, 0, serial) —
        # before old slot p's own appended stamps (p, 1, ·) and after
        # slot p-1's (p-1, 1, ·), even where the raw `ts` positions tie
        # at a segment boundary.
        entries: list[tuple[tuple[int, int, int, int], int, float]] = []
        for serial, pos in enumerate(ins_pos):
            seg_start = int(old.ts_indptr[pos])
            for within, stamp in enumerate(new_slot_stamps[serial]):
                entries.append(((pos, 0, serial, within), seg_start, stamp))
        for serial, (slot, stamps) in enumerate(updates):
            seg_lo = int(old.ts_indptr[slot])
            segment = old.ts[seg_lo : int(old.ts_indptr[slot + 1])]
            for within, stamp in enumerate(stamps):
                # side="right" mirrors insort's bisect_right placement
                pos = seg_lo + int(np.searchsorted(segment, stamp, side="right"))
                entries.append(((slot, 1, serial, within), pos, stamp))
        entries.sort(key=lambda entry: entry[0])
        ts_ins_pos = [entry[1] for entry in entries]
        ts_ins_val = [entry[2] for entry in entries]
        ts_new = np.insert(old.ts, ts_ins_pos, ts_ins_val)

        merged = CSRSnapshot(
            list(self._labels), indptr_new, indices_new, ts_indptr_new, ts_new
        )
        self._carry_influence_tables(old, merged, ts_ins_pos, ts_ins_val)
        return merged

    def _carry_influence_tables(
        self,
        old: CSRSnapshot,
        merged: CSRSnapshot,
        ts_ins_pos: list[int],
        ts_ins_val: list[float],
    ) -> None:
        """Patch the previous snapshot's cached influence tables forward.

        Each surviving ``(present, θ)`` key gets exactly the inserted
        stamps' entries added — ``math.exp(-θ·(present − t))`` per stamp,
        the same scalar expression :func:`influence_array` evaluates per
        unique stamp, so the patched table is bit-identical to a fresh
        build.  Keys a new stamp postdates are dropped (a fresh build
        would raise for them), matching the dict path's contract.
        """
        max_new = max(ts_ins_val) if ts_ins_val else None
        carried = 0
        for (present, theta), table in old._influence_tables.items():
            if max_new is not None and max_new > present:
                continue
            patched = np.insert(
                table,
                ts_ins_pos,
                [math.exp(-theta * (present - stamp)) for stamp in ts_ins_val],
            )
            merged._cache_influence_table((present, theta), patched)
            carried += 1
        if carried:
            incr("serve.delta.influence_tables_carried", carried)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeltaCSRSnapshot(nodes={self.number_of_nodes()}, "
            f"links={self.number_of_links()}, pending={self.pending_events})"
        )


def hop_ball(snapshot: CSRSnapshot, node_id: int, hops: int) -> np.ndarray:
    """Sorted node ids within ``hops`` of ``node_id`` (itself included).

    Array BFS over the snapshot's CSR rows — the locality ball both the
    feature cache's invalidation rule and the serving candidate
    generator are defined on.
    """
    if hops < 0:
        raise ValueError(f"hops must be >= 0, got {hops}")
    seen = np.array([node_id], dtype=np.int64)
    frontier = seen
    for _ in range(hops):
        if not frontier.size:
            break
        neighbors = concatenate_neighbor_slices(snapshot, frontier)
        frontier = np.setdiff1d(neighbors.astype(np.int64), seen)
        seen = np.union1d(seen, frontier)
    return seen

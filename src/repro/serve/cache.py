"""Serving feature cache with locality-ball invalidation.

SSF features are expensive relative to a cache probe (a subgraph walk,
Palette-WL ordering and a matrix unfold per pair), and a serving
workload re-asks about the same hot users while the graph changes only
locally between requests.  Sarkar/Chakrabarti/Jordan's analysis of
dynamic-graph prediction (PAPERS.md) is the justification: link
formation is overwhelmingly a *local* process, so a cached pair's
feature can only change when an edge event lands near it.

:class:`FeatureCache` stores one entry per scored pair, keyed by the
canonical pair label, carrying the feature vector and the node-id ball
the feature was extracted over.  An inverted node → pairs index makes
invalidation O(affected entries): when an edge event touches node ``n``,
every cached pair whose ball contains ``n`` is dropped
(:meth:`invalidate_nodes`).  The ball is the 2-hop neighbourhood of the
pair by default — the same friends-of-friends locality the candidate
generator walks.

**Approximation, stated honestly.**  Two ways a cached entry can be
stale without a ball hit, both documented in docs/SERVING.md:

* K-structure growth can exceed 2 hops on sparse graphs (the subgraph
  keeps growing until it holds K structure nodes), so a far-away event
  could in principle alter a feature.  Serve with ``invalidation_hops``
  matching the observed growth radius, or enable fingerprint
  verification below.
* Influence decays as the serving clock advances even with no nearby
  event.  Entries therefore record the ``present_time`` they were
  extracted at; ``max_staleness`` bounds how far the clock may drift
  before an entry is treated as a miss.

For exactness audits, each entry can carry a
:func:`~repro.graph.hashing.subgraph_fingerprint` of its ball; a probe
then recomputes the fingerprint against the *current* snapshot and
treats any mismatch as a miss (``verify=True`` — too expensive for the
hot path, invaluable for tests and canaries).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable

import numpy as np

from repro.graph.csr import CSRSnapshot
from repro.graph.hashing import subgraph_fingerprint
from repro.obs import incr, span

Node = Hashable
PairKey = tuple[str, str]

#: default bound on cached pair entries — at ~44 float64s per k=10
#: feature plus the ball id array, 10k entries stay well under 10 MB
DEFAULT_CACHE_ENTRIES = 10_000


def pair_key(u: Node, v: Node) -> PairKey:
    """Canonical (repr-sorted) cache key of an undirected pair."""
    a, b = repr(u), repr(v)
    return (a, b) if a <= b else (b, a)


@dataclass
class CacheEntry:
    """One cached pair: the feature row and the locality it depends on."""

    features: np.ndarray
    ball: "frozenset[int]"
    present_time: float
    fingerprint: "str | None" = None


class FeatureCache:
    """LRU feature cache with inverted-index ball invalidation.

    Counters (gated behind ``obs.enable``): ``serve.cache.hits``,
    ``serve.cache.misses``, ``serve.cache.evictions``,
    ``serve.cache.invalidations``, ``serve.cache.stale_drops``,
    ``serve.cache.verify_drops``.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_CACHE_ENTRIES,
        *,
        max_staleness: "float | None" = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_staleness is not None and max_staleness < 0:
            raise ValueError(f"max_staleness must be >= 0, got {max_staleness}")
        self.max_entries = max_entries
        self.max_staleness = max_staleness
        self._entries: OrderedDict[PairKey, CacheEntry] = OrderedDict()
        self._node_index: dict[int, set[PairKey]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # probe / insert
    # ------------------------------------------------------------------
    def get(
        self,
        key: PairKey,
        *,
        present_time: "float | None" = None,
        snapshot: "CSRSnapshot | None" = None,
        verify: bool = False,
    ) -> "CacheEntry | None":
        """The entry for ``key``, or ``None`` on a miss.

        ``present_time`` applies the ``max_staleness`` bound;
        ``verify=True`` (with ``snapshot``) recomputes the ball
        fingerprint and drops the entry on mismatch.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            incr("serve.cache.misses")
            return None
        if (
            self.max_staleness is not None
            and present_time is not None
            and abs(present_time - entry.present_time) > self.max_staleness
        ):
            self._drop(key)
            self.misses += 1
            incr("serve.cache.stale_drops")
            incr("serve.cache.misses")
            return None
        if verify and snapshot is not None and entry.fingerprint is not None:
            if subgraph_fingerprint(snapshot, entry.ball) != entry.fingerprint:
                self._drop(key)
                self.misses += 1
                incr("serve.cache.verify_drops")
                incr("serve.cache.misses")
                return None
        self._entries.move_to_end(key)
        self.hits += 1
        incr("serve.cache.hits")
        return entry

    def put(
        self,
        key: PairKey,
        features: np.ndarray,
        ball: "Iterable[int]",
        present_time: float,
        *,
        snapshot: "CSRSnapshot | None" = None,
        fingerprint: bool = False,
    ) -> None:
        """Insert/replace one entry; evicts LRU entries past the bound."""
        if key in self._entries:
            self._drop(key)
        ball_ids = (
            ball
            if isinstance(ball, frozenset)
            else frozenset(int(n) for n in ball)
        )
        digest = (
            subgraph_fingerprint(snapshot, ball_ids)
            if fingerprint and snapshot is not None
            else None
        )
        self._entries[key] = CacheEntry(
            features=features,
            ball=ball_ids,
            present_time=float(present_time),
            fingerprint=digest,
        )
        for node_id in ball_ids:
            self._node_index.setdefault(node_id, set()).add(key)
        while len(self._entries) > self.max_entries:
            evicted_key, evicted = self._entries.popitem(last=False)
            self._unindex(evicted_key, evicted)
            self.evictions += 1
            incr("serve.cache.evictions")

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def invalidate_nodes(self, node_ids: "Iterable[int]") -> list[PairKey]:
        """Drop every entry whose ball contains any of ``node_ids``.

        The serving loop calls this with the endpoints of each ingested
        edge event: an event inside a cached pair's 2-hop ball lands on
        a node the ball contains, so the inverted index finds exactly
        the affected entries.  Returns the dropped keys (sorted) so
        callers can cascade the invalidation to derived caches.
        """
        # under an active request context (rtrace) this span inherits
        # the ingesting request's trace id via the record provider
        with span("serve.cache_invalidate") as inv_span:
            doomed: set[PairKey] = set()
            for node_id in node_ids:
                doomed.update(self._node_index.get(int(node_id), ()))
            dropped = sorted(doomed)
            for key in dropped:
                self._drop(key)
                self.invalidations += 1
                incr("serve.cache.invalidations")
            inv_span.tags.update(dropped=len(dropped))
        return dropped

    def clear(self) -> None:
        self._entries.clear()
        self._node_index.clear()

    def _drop(self, key: PairKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._unindex(key, entry)

    def _unindex(self, key: PairKey, entry: CacheEntry) -> None:
        # O(|ball|): the entry knows exactly which index rows hold it
        for node_id in entry.ball:
            keys = self._node_index.get(node_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._node_index[node_id]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        probes = self.hits + self.misses
        return self.hits / probes if probes else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
        }

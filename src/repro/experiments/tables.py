"""Text renderers for the paper's tables.

* Table I — feature comparison (formulas, universal/dynamic flags),
* Table II — dataset statistics,
* Table III — AUC/F1 of every method on every dataset.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.methods import METHOD_ORDER, MethodResult

#: Table I rows: (name, formula, universal?, dynamic?).
TABLE1_ROWS: tuple[tuple[str, str, bool, bool], ...] = (
    ("CN", "|Γx ∩ Γy|", False, False),
    ("PA", "|Γx| · |Γy|", False, False),
    ("Jac.", "|Γx ∩ Γy| / |Γx ∪ Γy|", False, False),
    ("AA", "Σ_z 1/log|Γz|", False, False),
    ("RA", "Σ_z 1/|Γz|", False, False),
    ("RW", "p_x^t = M^T p_x^{t-1}", False, False),
    ("Katz", "Σ_l β^l (A^l)_xy", False, False),
    ("rWRA", "Σ_z Wxz·Wyz / Sz", False, True),
    ("WLF", "link feature vector", True, False),
    ("SSF (our work)", "link feature vector", True, True),
)


def format_table1() -> str:
    """Render Table I (static metadata; the flags are the paper's claim)."""
    lines = [f"{'feature':16s} {'formula':28s} {'universal':>9s} {'dynamic':>8s}"]
    lines.append("-" * 64)
    for name, formula, universal, dynamic in TABLE1_ROWS:
        lines.append(
            f"{name:16s} {formula:28s} {_flag(universal):>9s} {_flag(dynamic):>8s}"
        )
    return "\n".join(lines)


def _flag(value: bool) -> str:
    return "yes" if value else "no"


def format_table2(rows: Mapping[str, Mapping]) -> str:
    """Render Table II from ``{dataset: statistics-dict}`` rows.

    Statistics dicts are the output of
    :func:`repro.datasets.catalog.dataset_statistics`.
    """
    lines = [
        f"{'dataset':10s} {'|V|':>6s} {'|E|':>8s} {'avg deg':>8s} {'span':>6s}"
    ]
    lines.append("-" * 44)
    for name, stats in rows.items():
        lines.append(
            f"{name:10s} {stats['nodes']:6d} {stats['links']:8d} "
            f"{stats['avg_degree']:8.2f} {stats['time_span']:6d}"
        )
    return "\n".join(lines)


def format_table3(
    results: Mapping[str, Mapping[str, MethodResult]],
    methods: "Sequence[str] | None" = None,
) -> str:
    """Render Table III from ``{dataset: {method: MethodResult}}``.

    Datasets become column pairs (AUC, F1); methods become rows in the
    paper's order.  The best AUC and F1 per dataset are marked ``*``.
    """
    datasets = list(results)
    requested = list(methods or METHOD_ORDER)
    # canonical Table III row order; extension methods follow, as given
    canonical = {name: i for i, name in enumerate(METHOD_ORDER)}
    requested.sort(key=lambda m: canonical.get(m, len(canonical)))
    method_names = [
        m for m in requested if all(m in results[d] for d in datasets)
    ]
    if not method_names:
        raise ValueError("no method evaluated on every dataset")

    best_auc = {
        d: max(results[d][m].auc for m in method_names) for d in datasets
    }
    best_f1 = {d: max(results[d][m].f1 for m in method_names) for d in datasets}

    header = f"{'method':9s}"
    for d in datasets:
        header += f" | {d[:13]:>13s}"
    sub = f"{'':9s}"
    for _ in datasets:
        sub += f" | {'AUC':>6s} {'F1':>6s}"
    lines = [header, sub, "-" * len(sub)]
    for m in method_names:
        row = f"{m:9s}"
        for d in datasets:
            result = results[d][m]
            auc_mark = "*" if result.auc == best_auc[d] else " "
            f1_mark = "*" if result.f1 == best_f1[d] else " "
            row += f" | {result.auc:5.3f}{auc_mark}{result.f1:5.3f}{f1_mark}"
        lines.append(row)
    return "\n".join(lines)

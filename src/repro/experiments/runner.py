"""Running methods on datasets — the engine behind Table III and Fig. 7.

:class:`LinkPredictionExperiment` owns one dataset's split and a feature
cache; methods are evaluated on demand.  Feature kinds map to extractor
runs, and the two SSF variants ("ssf" influence entries, "ssf_w" count
entries) share a single K-structure-subgraph extraction per link via
:meth:`~repro.core.feature.SSFExtractor.extract_multi`.

Module-level helpers :func:`run_dataset` and :func:`run_table3` regenerate
entire table columns / the full table.

Fault tolerance: pass a :class:`~repro.robust.checkpoint.RunCheckpoint`
(or ``checkpoint_dir`` to :func:`run_table3`) and every completed
``(dataset, method)`` cell — plus the extracted feature matrices, which
dominate the cost — is persisted as it lands.  A killed run resumed into
the same directory recomputes only the missing cells and produces
``MethodResult``\\ s equal to an uninterrupted run (``repro table3
--resume <dir>``; see docs/ROBUSTNESS.md).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines import WLFExtractor
from repro.core.feature import SSFConfig, SSFExtractor
from repro.datasets.catalog import DatasetSpec, get_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import (
    FEATURE_METHODS,
    METHOD_ORDER,
    RANKING_METHODS,
    MethodResult,
    validate_method_name,
)
from repro.graph.temporal import DynamicNetwork
from repro.metrics.classification import f1_score, roc_auc_score
from repro.models.linear import LinearRegressionModel
from repro.models.neural import NeuralMachine
from repro.models.ranking import ThresholdClassifier
from repro.obs import get_logger, heartbeat_tick, incr, set_phase, span, tracemalloc_stage
from repro.robust import RetryPolicy
from repro.robust.checkpoint import RunCheckpoint
from repro.sampling.splits import LinkPredictionTask, build_link_prediction_task

#: the feature kinds the cache understands
_FEATURE_KINDS = ("wlf", "ssf", "ssf_w")

_LOG = get_logger("experiments.runner")


class LinkPredictionExperiment:
    """One dataset, one split, all methods.

    Example:
        >>> from repro.datasets import get_dataset
        >>> net = get_dataset("co-author").generate(seed=0, scale=0.2)
        >>> exp = LinkPredictionExperiment(net, ExperimentConfig().fast())
        >>> result = exp.run_method("CN")
        >>> 0.0 <= result.auc <= 1.0
        True
    """

    def __init__(
        self,
        network: DynamicNetwork,
        config: "ExperimentConfig | None" = None,
        task: "LinkPredictionTask | None" = None,
        *,
        checkpoint: "RunCheckpoint | None" = None,
        dataset_name: str = "dataset",
    ) -> None:
        """Args:
        network: the full dynamic network (history + final timestamp).
        config: hyper-parameters; defaults to :class:`ExperimentConfig`.
        task: a pre-built split (otherwise built from ``network`` with
            the config's split settings).
        checkpoint: when given, completed method results and feature
            matrices are persisted there and reloaded instead of
            recomputed (crash/resume support).
        dataset_name: the checkpoint cell key for this experiment's
            dataset.
        """
        self.config = config or ExperimentConfig()
        self.network = network
        self.checkpoint = checkpoint
        self.dataset_name = dataset_name
        self.task = task or build_link_prediction_task(
            network,
            train_fraction=self.config.train_fraction,
            negative_ratio=self.config.negative_ratio,
            exclude_history_negatives=self.config.exclude_history_negatives,
            max_positives=self.config.max_positives,
            seed=self.config.seed,
        )
        self._feature_cache: dict[str, tuple[np.ndarray, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # feature extraction (cached)
    # ------------------------------------------------------------------
    def feature_matrices(self, kind: str) -> tuple[np.ndarray, np.ndarray]:
        """(train, test) feature matrices for a feature kind.

        ``"ssf"`` and ``"ssf_w"`` are computed together on first request.
        """
        if kind not in _FEATURE_KINDS:
            raise ValueError(f"unknown feature kind {kind!r}; one of {_FEATURE_KINDS}")
        cached = self._feature_cache.get(kind)
        if cached is not None:
            incr("runner.feature_cache.hits")
            return cached
        incr("runner.feature_cache.misses")
        if self._load_checkpointed_features(kind):
            return self._feature_cache[kind]

        if kind == "wlf":
            with span("runner.extract_features", kind="wlf"):
                with tracemalloc_stage("extract_wlf"):
                    extractor = WLFExtractor(self.task.history, k=self.config.k)
                    self._feature_cache["wlf"] = (
                        extractor.extract_batch(self.task.train_pairs),
                        extractor.extract_batch(self.task.test_pairs),
                    )
        else:
            with span("runner.extract_features", kind="ssf"):
                with tracemalloc_stage("extract_ssf"):
                    self._extract_ssf_features()
        self._checkpoint_features(("wlf",) if kind == "wlf" else ("ssf", "ssf_w"))
        _LOG.debug(
            "feature matrices ready for kind=%s (%d train / %d test pairs)",
            kind,
            len(self.task.train_pairs),
            len(self.task.test_pairs),
        )
        return self._feature_cache[kind]

    def _load_checkpointed_features(self, kind: str) -> bool:
        """Fill the cache for ``kind`` from the checkpoint, if possible.

        The two SSF kinds are extracted together, so both must be
        present for either to load — otherwise a resumed run would pay
        the shared extraction again anyway.
        """
        if self.checkpoint is None:
            return False
        kinds = ("wlf",) if kind == "wlf" else ("ssf", "ssf_w")
        loaded = {
            k: self.checkpoint.load_features(self.dataset_name, k) for k in kinds
        }
        if any(v is None for v in loaded.values()):
            return False
        for k, matrices in loaded.items():
            assert matrices is not None
            self._feature_cache[k] = matrices
        _LOG.info(
            "feature matrices for %s kind(s) %s restored from checkpoint",
            self.dataset_name,
            ", ".join(kinds),
        )
        return True

    def _checkpoint_features(self, kinds: "tuple[str, ...]") -> None:
        if self.checkpoint is None:
            return
        for kind in kinds:
            train, test = self._feature_cache[kind]
            self.checkpoint.save_features(self.dataset_name, kind, train, test)

    def _extract_ssf_features(self) -> None:
        """Fill the cache for both SSF variants with shared extraction."""
        from repro.core.feature import resolve_backend
        from repro.core.parallel import parallel_extract_batch
        from repro.graph.csr import CSRSnapshot

        config = SSFConfig(k=self.config.k, theta=self.config.theta)
        # "temporal" entries are the SSF default (see repro.core.feature);
        # "count" entries are the static SSF-W variant's 0/k encoding.
        modes = ("temporal", "count")
        # On the csr backend, freeze ONE snapshot for the whole observed
        # window and reuse it across the train and test batches (and every
        # pool worker) so the freeze cost is paid once per history.
        backend = resolve_backend(self.task.history, self.config.backend)
        history = (
            CSRSnapshot.from_dynamic(self.task.history)
            if backend == "csr"
            else self.task.history
        )

        retry = RetryPolicy(
            max_retries=self.config.max_retries,
            chunk_timeout=self.config.chunk_timeout,
        )

        def batch(pairs: Sequence[tuple]) -> dict[str, np.ndarray]:
            return parallel_extract_batch(
                history,
                config,
                pairs,
                present_time=self.task.present_time,
                modes=modes,
                workers=self.config.n_jobs,
                backend=backend,
                retry=retry,
            )

        train = batch(self.task.train_pairs)
        test = batch(self.task.test_pairs)
        self._feature_cache["ssf"] = (train["temporal"], test["temporal"])
        self._feature_cache["ssf_w"] = (train["count"], test["count"])

    # ------------------------------------------------------------------
    # method evaluation
    # ------------------------------------------------------------------
    def run_method(self, name: str) -> MethodResult:
        """Evaluate one Table III method on this experiment's split.

        With a checkpoint attached, a cell completed by an earlier
        (possibly killed) run is returned straight from disk.
        """
        validate_method_name(name)
        if self.checkpoint is not None:
            restored = self.checkpoint.load_result(self.dataset_name, name)
            if restored is not None:
                incr("robust.resumed_cells")
                _LOG.info(
                    "cell (%s, %s) restored from checkpoint", self.dataset_name, name
                )
                return restored
        if name in RANKING_METHODS:
            result = self._run_ranking(name)
        else:
            result = self._run_feature_model(name)
        if self.checkpoint is not None:
            self.checkpoint.save_result(self.dataset_name, result)
        return result

    def run_methods(
        self, names: "Sequence[str] | None" = None
    ) -> dict[str, MethodResult]:
        """Evaluate several methods (defaults to the full Table III set).

        Progress is published live: the run phase tracks the current
        ``dataset/method`` cell (served by the telemetry ``/healthz``
        endpoint) and the heartbeat file advances one beat per cell.
        """
        selected = list(names or METHOD_ORDER)
        out: dict[str, MethodResult] = {}
        for position, name in enumerate(selected):
            set_phase(f"table3:{self.dataset_name}/{name}")
            heartbeat_tick(
                f"methods:{self.dataset_name}",
                done=position,
                total=len(selected),
                force=True,
            )
            out[name] = self.run_method(name)
        heartbeat_tick(
            f"methods:{self.dataset_name}",
            done=len(selected),
            total=len(selected),
            force=True,
        )
        return out

    def _run_ranking(self, name: str) -> MethodResult:
        scorer = RANKING_METHODS[name](self.config)
        classifier = ThresholdClassifier(scorer).fit(
            self.task.history, self.task.train_pairs, self.task.train_labels
        )
        scores = classifier.decision_scores(self.task.test_pairs)
        predictions = classifier.predict(self.task.test_pairs)
        return self._result(name, scores, predictions, threshold=classifier.threshold)

    def _run_feature_model(self, name: str) -> MethodResult:
        feature_kind, model_kind = FEATURE_METHODS[name]
        x_train, x_test = self.feature_matrices(feature_kind)
        if model_kind == "linear":
            model = LinearRegressionModel().fit(x_train, self.task.train_labels)
        else:
            model = NeuralMachine(
                input_dim=x_train.shape[1],
                learning_rate=self.config.learning_rate,
                batch_size=self.config.batch_size,
                epochs=self.config.epochs,
                seed=self.config.seed,
            ).fit(x_train, self.task.train_labels)
        scores = model.decision_scores(x_test)
        predictions = model.predict(x_test)
        return self._result(name, scores, predictions)

    def _result(
        self,
        name: str,
        scores: np.ndarray,
        predictions: np.ndarray,
        **extras,
    ) -> MethodResult:
        labels = self.task.test_labels
        return MethodResult(
            method=name,
            auc=roc_auc_score(labels, scores),
            f1=f1_score(labels, predictions),
            # raw test scores feed the significance testing downstream
            extras=dict(extras, test_scores=scores),
        )


def run_dataset(
    dataset: "str | DatasetSpec | DynamicNetwork",
    *,
    config: "ExperimentConfig | None" = None,
    methods: "Sequence[str] | None" = None,
    seed: int = 0,
    scale: float = 1.0,
    checkpoint: "RunCheckpoint | None" = None,
    dataset_name: "str | None" = None,
) -> dict[str, MethodResult]:
    """All (or selected) methods on one dataset.

    ``dataset`` may be a catalog name, a :class:`DatasetSpec`, or an
    already-built network.  With ``checkpoint``, completed cells are
    persisted as they land and reloaded on a resumed run.
    """
    if isinstance(dataset, DynamicNetwork):
        network = dataset
        name = dataset_name or "dataset"
    else:
        spec = get_dataset(dataset) if isinstance(dataset, str) else dataset
        network = spec.generate(seed=seed, scale=scale)
        name = dataset_name or spec.name
    experiment = LinkPredictionExperiment(
        network, config, checkpoint=checkpoint, dataset_name=name
    )
    return experiment.run_methods(methods)


def table3_manifest(
    datasets: "Sequence[str] | None",
    config: "ExperimentConfig | None",
    methods: "Sequence[str] | None",
    seed: int,
    scale: float,
) -> dict:
    """The settings fingerprint recorded in a Table-3 run directory.

    Resuming with a different fingerprint is refused — mixing settings
    across a resume would silently corrupt the table.
    """
    from dataclasses import asdict

    return {
        "experiment": "table3",
        "datasets": list(datasets) if datasets is not None else None,
        "methods": list(methods) if methods is not None else None,
        "seed": seed,
        "scale": scale,
        "config": asdict(config or ExperimentConfig()),
    }


def run_table3(
    datasets: "Sequence[str] | None" = None,
    *,
    config: "ExperimentConfig | None" = None,
    methods: "Sequence[str] | None" = None,
    seed: int = 0,
    scale: float = 1.0,
    checkpoint_dir: "str | None" = None,
) -> dict[str, dict[str, MethodResult]]:
    """Regenerate Table III: ``{dataset: {method: result}}``.

    With ``checkpoint_dir``, per-cell results are persisted there as the
    run progresses; re-running into the same directory (``repro table3
    --resume <dir>``) skips everything already completed.
    """
    from repro.datasets.catalog import DATASETS

    checkpoint: "RunCheckpoint | None" = None
    if checkpoint_dir is not None:
        checkpoint = RunCheckpoint(checkpoint_dir)
        checkpoint.ensure_manifest(
            table3_manifest(datasets, config, methods, seed, scale)
        )
    out: dict[str, dict[str, MethodResult]] = {}
    for name in datasets or list(DATASETS):
        out[name] = run_dataset(
            name,
            config=config,
            methods=methods,
            seed=seed,
            scale=scale,
            checkpoint=checkpoint,
        )
    return out

"""Reproducibility manifests for experiment runs.

A manifest freezes everything needed to re-obtain a result: the library
version, the numeric-stack versions, the experiment configuration, the
dataset fingerprint and the split summary.  Attach one to any saved
result file and a later session can verify it is comparing like with
like.
"""

from __future__ import annotations

import json
import platform
from dataclasses import asdict
from typing import Any

from repro.experiments.config import ExperimentConfig
from repro.graph.hashing import network_fingerprint
from repro.graph.temporal import DynamicNetwork
from repro.obs import get_logger
from repro.sampling.splits import LinkPredictionTask

MANIFEST_VERSION = 1

_LOG = get_logger("experiments.manifest")


def build_manifest(
    network: DynamicNetwork,
    config: ExperimentConfig,
    task: "LinkPredictionTask | None" = None,
    extra: "dict[str, Any] | None" = None,
) -> dict:
    """Collect the reproducibility record for one experiment run."""
    import numpy
    import scipy

    import repro

    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "repro_version": repro.__version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy.__version__,
        "config": asdict(config),
        "network": {
            "fingerprint": network_fingerprint(network),
            "nodes": network.number_of_nodes(),
            "links": network.number_of_links(),
        },
    }
    if task is not None:
        manifest["task"] = task.summary()
        manifest["task"]["metadata"] = dict(task.metadata)
    if extra:
        manifest["extra"] = dict(extra)
    return manifest


def write_manifest(manifest: dict, path) -> None:
    """Write a manifest as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True, default=str)
        fh.write("\n")
    _LOG.info("manifest written to %s", path)


def verify_manifest(manifest: dict, network: DynamicNetwork) -> list[str]:
    """Check a stored manifest against the present environment/network.

    Returns:
        Human-readable mismatch descriptions (empty = everything checks
        out).  Version drifts are reported but — unlike a fingerprint
        mismatch — usually benign.
    """
    import numpy

    import repro

    problems: list[str] = []
    if manifest.get("manifest_version") != MANIFEST_VERSION:
        problems.append(
            f"manifest version {manifest.get('manifest_version')!r} "
            f"!= supported {MANIFEST_VERSION}"
        )
        return problems
    expected = manifest.get("network", {}).get("fingerprint")
    actual = network_fingerprint(network)
    if expected != actual:
        problems.append(
            f"network fingerprint mismatch: stored {expected!r:.20}..., "
            f"present {actual!r:.20}..."
        )
    if manifest.get("repro_version") != repro.__version__:
        problems.append(
            f"repro version drift: stored {manifest.get('repro_version')}, "
            f"running {repro.__version__}"
        )
    if manifest.get("numpy") != numpy.__version__:
        problems.append(
            f"numpy version drift: stored {manifest.get('numpy')}, "
            f"running {numpy.__version__}"
        )
    for problem in problems:
        _LOG.warning("manifest check: %s", problem)
    return problems

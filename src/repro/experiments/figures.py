"""Figure regenerators: the Fig. 7 K sweep and the Fig. 6 pattern report."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import MethodResult
from repro.experiments.runner import LinkPredictionExperiment
from repro.graph.temporal import DynamicNetwork
from repro.patterns.mining import PatternStatistics, mine_patterns, most_frequent_pattern
from repro.patterns.render import render_pattern

#: the K values swept in Fig. 7
DEFAULT_K_VALUES: tuple[int, ...] = (5, 10, 15, 20)


def k_sweep(
    network: DynamicNetwork,
    *,
    config: "ExperimentConfig | None" = None,
    k_values: Sequence[int] = DEFAULT_K_VALUES,
    method: str = "SSFNM",
) -> dict[int, MethodResult]:
    """AUC/F1 of one SSF method across K values (Fig. 7).

    The split is held fixed (same seed) so only K varies.
    """
    base = config or ExperimentConfig()
    out: dict[int, MethodResult] = {}
    for k in k_values:
        experiment = LinkPredictionExperiment(network, base.with_k(k))
        out[k] = experiment.run_method(method)
    return out


def format_k_sweep(results: Mapping[int, MethodResult], dataset: str = "") -> str:
    """Render a K sweep as one text block (one Fig. 7 panel)."""
    title = f"K sweep{' on ' + dataset if dataset else ''}"
    lines = [title, f"{'K':>4s} {'AUC':>7s} {'F1':>7s}"]
    for k in sorted(results):
        result = results[k]
        lines.append(f"{k:4d} {result.auc:7.3f} {result.f1:7.3f}")
    return "\n".join(lines)


def mine_frequent_pattern(
    network: DynamicNetwork,
    *,
    n_samples: int = 2000,
    k: int = 10,
    seed: int = 0,
) -> tuple[PatternStatistics, str]:
    """The most frequent K-structure-subgraph pattern plus its rendering.

    This is one panel of Fig. 6 (the paper shows Facebook and Co-author).
    """
    stats = mine_patterns(network, n_samples=n_samples, k=k, seed=seed)
    top = most_frequent_pattern(stats)
    return top, render_pattern(top, k)

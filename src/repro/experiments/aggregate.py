"""Multi-seed aggregation: mean ± std over repeated experiment runs.

The paper reports single-split point estimates; on the synthetic
substrate the honest comparison repeats the whole pipeline — dataset
generation, split, negative sampling, model initialisation — across
seeds and aggregates.  :func:`run_repeated` does exactly that for any
subset of methods on one catalog dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.datasets.catalog import DatasetSpec, get_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import LinkPredictionExperiment


@dataclass(frozen=True)
class AggregatedResult:
    """AUC/F1 of one method over several seeds."""

    method: str
    auc_values: tuple[float, ...]
    f1_values: tuple[float, ...]

    @property
    def auc_mean(self) -> float:
        return float(np.mean(self.auc_values))

    @property
    def auc_std(self) -> float:
        return float(np.std(self.auc_values))

    @property
    def f1_mean(self) -> float:
        return float(np.mean(self.f1_values))

    @property
    def f1_std(self) -> float:
        return float(np.std(self.f1_values))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.method}: AUC={self.auc_mean:.3f}±{self.auc_std:.3f} "
            f"F1={self.f1_mean:.3f}±{self.f1_std:.3f} "
            f"({len(self.auc_values)} seeds)"
        )


def run_repeated(
    dataset: "str | DatasetSpec",
    *,
    methods: Sequence[str],
    config: "ExperimentConfig | None" = None,
    n_seeds: int = 5,
    scale: float = 1.0,
) -> dict[str, AggregatedResult]:
    """Repeat (generate → split → evaluate) across seeds and aggregate.

    Seed ``s`` drives the generator AND (via the config) the split,
    negative sampling and model initialisation, so the reported std
    covers the full pipeline variance.
    """
    if n_seeds < 1:
        raise ValueError(f"n_seeds must be >= 1, got {n_seeds}")
    if not methods:
        raise ValueError("provide at least one method name")
    spec = get_dataset(dataset) if isinstance(dataset, str) else dataset
    base = config or ExperimentConfig()

    per_method: dict[str, list[tuple[float, float]]] = {m: [] for m in methods}
    for seed in range(n_seeds):
        network = spec.generate(seed=seed, scale=scale)
        experiment = LinkPredictionExperiment(network, replace(base, seed=seed))
        for method in methods:
            result = experiment.run_method(method)
            per_method[method].append((result.auc, result.f1))

    return {
        method: AggregatedResult(
            method=method,
            auc_values=tuple(auc for auc, _ in values),
            f1_values=tuple(f1 for _, f1 in values),
        )
        for method, values in per_method.items()
    }


def format_aggregated(results: Mapping[str, AggregatedResult]) -> str:
    """Render aggregated results as one aligned text block."""
    lines = [f"{'method':9s} {'AUC':>15s} {'F1':>15s}"]
    lines.append("-" * 41)
    for name, result in results.items():
        lines.append(
            f"{name:9s} {result.auc_mean:7.3f}±{result.auc_std:5.3f} "
            f"{result.f1_mean:7.3f}±{result.f1_std:5.3f}"
        )
    return "\n".join(lines)

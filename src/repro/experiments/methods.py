"""The 15 link-prediction methods of Table III, as a registry.

Three families (Sec. VI-C1):

* ranking methods — an unsupervised :class:`~repro.baselines.base.LinkScorer`
  calibrated by :class:`~repro.models.ranking.ThresholdClassifier`
  (CN, Jac., PA, AA, RA, rWRA, Katz, RW, NMF),
* linear-regression feature methods — WLLR, SSFLR-W, SSFLR,
* neural-machine feature methods — WLNM, SSFNM-W, SSFNM.

Feature methods are declared as ``(feature_kind, model_kind)``; the
runner resolves feature kinds to cached feature matrices so SSF variants
share one subgraph extraction per link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.baselines import (
    AdamicAdar,
    CommonNeighbors,
    Jaccard,
    Katz,
    LinkScorer,
    LocalPath,
    LocalRandomWalk,
    NMFLinkPredictor,
    PreferentialAttachment,
    RecentActivity,
    ReliableWeightedResourceAllocation,
    ResourceAllocation,
    SpectralEmbedding,
    TemporalNMF,
    TemporalCommonNeighbors,
    TemporalResourceAllocation,
)
from repro.experiments.config import ExperimentConfig

#: Table III row order.
METHOD_ORDER: tuple[str, ...] = (
    "CN",
    "Jac.",
    "PA",
    "AA",
    "RA",
    "rWRA",
    "Katz",
    "RW",
    "NMF",
    "WLLR",
    "SSFLR-W",
    "WLNM",
    "SSFNM-W",
    "SSFLR",
    "SSFNM",
)

#: ranking-model methods: name -> scorer factory taking the config
RANKING_METHODS: dict[str, Callable[[ExperimentConfig], LinkScorer]] = {
    "CN": lambda cfg: CommonNeighbors(),
    "Jac.": lambda cfg: Jaccard(),
    "PA": lambda cfg: PreferentialAttachment(),
    "AA": lambda cfg: AdamicAdar(),
    "RA": lambda cfg: ResourceAllocation(),
    "rWRA": lambda cfg: ReliableWeightedResourceAllocation(),
    "Katz": lambda cfg: Katz(beta=cfg.katz_beta),
    "RW": lambda cfg: LocalRandomWalk(steps=cfg.rw_steps),
    "NMF": lambda cfg: NMFLinkPredictor(
        rank=cfg.nmf_rank, max_iter=cfg.nmf_iterations, seed=cfg.seed
    ),
    # ---- extensions beyond the paper's Table III (ablations) ----
    "LP": lambda cfg: LocalPath(),
    "tCN": lambda cfg: TemporalCommonNeighbors(theta=cfg.theta),
    "tRA": lambda cfg: TemporalResourceAllocation(theta=cfg.theta),
    "tPA": lambda cfg: RecentActivity(theta=cfg.theta),
    "tNMF": lambda cfg: TemporalNMF(
        rank=cfg.nmf_rank, theta=cfg.theta, max_iter=cfg.nmf_iterations,
        seed=cfg.seed,
    ),
    "Spectral": lambda cfg: SpectralEmbedding(rank=cfg.nmf_rank),
}

#: extension methods NOT in the paper's Table III (see baselines.temporal)
EXTENDED_METHODS: tuple[str, ...] = ("LP", "tCN", "tRA", "tPA", "tNMF", "Spectral")

#: feature-model methods: name -> (feature kind, model kind)
#: feature kinds: "wlf" | "ssf" (influence entries) | "ssf_w" (count entries)
#: model kinds: "linear" | "neural"
FEATURE_METHODS: dict[str, tuple[str, str]] = {
    "WLLR": ("wlf", "linear"),
    "WLNM": ("wlf", "neural"),
    "SSFLR": ("ssf", "linear"),
    "SSFNM": ("ssf", "neural"),
    "SSFLR-W": ("ssf_w", "linear"),
    "SSFNM-W": ("ssf_w", "neural"),
}


@dataclass
class MethodResult:
    """AUC/F1 of one method on one dataset (one Table III cell pair)."""

    method: str
    auc: float
    f1: float
    extras: dict = field(default_factory=dict)

    def as_row(self) -> tuple[str, float, float]:
        return (self.method, round(self.auc, 3), round(self.f1, 3))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.method}: AUC={self.auc:.3f} F1={self.f1:.3f}"


def validate_method_name(name: str) -> str:
    """Raise with the available names when ``name`` is unknown."""
    if name not in RANKING_METHODS and name not in FEATURE_METHODS:
        raise KeyError(
            f"unknown method {name!r}; available: {', '.join(METHOD_ORDER)}"
        )
    return name

"""Experiment hyper-parameters (Sec. VI-C2 settings in one place)."""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class ExperimentConfig:
    """Settings shared by every method in one experiment run.

    Defaults follow Sec. VI-C2 except ``epochs``: the paper trains the
    neural machine for 2000 epochs, which we scale down to keep the full
    7-dataset harness laptop-runnable (the loss plateaus far earlier with
    Adam).  Use :meth:`paper_settings` for the faithful configuration.

    Attributes:
        k: structure nodes per subgraph (paper: 10).
        theta: influence damping factor (paper: 0.5).
        epochs / learning_rate / batch_size: neural-machine training.
        train_fraction: positive-sample train share (paper: 0.7).
        negative_ratio: negatives per positive (paper: 1.0).
        exclude_history_negatives: negatives must have no historical link.
        max_positives: optional cap on positive pairs per dataset (speed).
        nmf_rank / nmf_iterations: NMF baseline factorisation.
        katz_beta: Katz damping (paper: 0.001).
        rw_steps: local-random-walk steps.
        n_jobs: worker processes for SSF feature extraction (1 = in
            process; extraction is deterministic either way).
        max_retries: pool rounds re-dispatching failed extraction chunks
            before the in-parent sequential fallback (see
            docs/ROBUSTNESS.md; results stay bit-identical either way).
        chunk_timeout: seconds a pool may stay silent before its missing
            chunks count as hung/lost and are retried; ``None`` waits
            forever (disables dead-worker detection).
        backend: SSF extraction substrate — ``"dict"`` (faithful
            reference), ``"csr"`` (frozen array snapshot, bit-identical
            features), or ``"auto"`` (csr once the history is large
            enough to amortise the freeze).
        seed: master seed (split, negatives, model init).
    """

    k: int = 10
    theta: float = 0.5
    epochs: int = 120
    learning_rate: float = 1e-3
    batch_size: int = 10
    train_fraction: float = 0.7
    negative_ratio: float = 1.0
    exclude_history_negatives: bool = True
    max_positives: "int | None" = None
    nmf_rank: int = 32
    nmf_iterations: int = 40
    katz_beta: float = 0.001
    rw_steps: int = 3
    n_jobs: int = 1
    max_retries: int = 2
    chunk_timeout: "float | None" = 300.0
    backend: str = "auto"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 3:
            raise ValueError(f"k must be >= 3, got {self.k}")
        if not 0.0 < self.theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {self.theta}")
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if not 0.0 < self.train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        if self.n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {self.n_jobs}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be positive or None, got {self.chunk_timeout}"
            )
        if self.backend not in ("auto", "dict", "csr"):
            raise ValueError(
                f"backend must be 'auto', 'dict' or 'csr', got {self.backend!r}"
            )

    @classmethod
    def paper_settings(cls) -> "ExperimentConfig":
        """The exact Sec. VI-C2 hyper-parameters (2000 epochs)."""
        return cls(epochs=2000)

    def with_k(self, k: int) -> "ExperimentConfig":
        """Copy with a different K (used by the Fig. 7 sweep)."""
        return replace(self, k=k)

    def fast(self) -> "ExperimentConfig":
        """A cheap variant for tests: few epochs, capped sample counts."""
        return replace(self, epochs=30, max_positives=60, nmf_iterations=15)

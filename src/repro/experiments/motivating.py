"""The Fig. 1 motivating example: celebrities vs. common fans.

The network (Fig. 1(a)): celebrities ``A``, ``B`` and ``C`` each receive
comments from many fans; ``A`` and ``B`` both interact with ``C``.
``X`` and ``Y`` are common users who are both fans of ``C``.  The paper
argues a good feature should consider link ``A–B`` far more likely than
``X–Y`` — yet CN, AA, RA and rWRA score the two pairs identically (both
have exactly the common neighbour ``C``), and PA/Jaccard, while different,
ignore that the shared neighbour ``C`` is itself a celebrity.

:func:`motivating_comparison` reproduces the Fig. 1(b) feature table and
demonstrates that the SSF vectors of the two target links differ.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.baselines import (
    AdamicAdar,
    CommonNeighbors,
    Jaccard,
    PreferentialAttachment,
    ReliableWeightedResourceAllocation,
    ResourceAllocation,
)
from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.temporal import DynamicNetwork

Node = Hashable

#: the two target links the figure compares
TARGET_CELEBRITY = ("A", "B")
TARGET_FANS = ("X", "Y")


def build_celebrity_network(
    fans_per_celebrity: int = 8,
    seed_timestamp: int = 1,
) -> DynamicNetwork:
    """Construct the Fig. 1(a) comment network.

    ``A``, ``B`` and ``C`` each receive comments from
    ``fans_per_celebrity`` distinct fans; ``A–C`` and ``B–C`` interact;
    ``X`` and ``Y`` are fans of ``C`` only.  Links carry increasing
    timestamps (the figure's network is dynamic).
    """
    if fans_per_celebrity < 1:
        raise ValueError("fans_per_celebrity must be >= 1")
    network = DynamicNetwork()
    ts = float(seed_timestamp)
    for celebrity in ("A", "B", "C"):
        for fan in range(fans_per_celebrity):
            network.add_edge(celebrity, f"fan_{celebrity}_{fan}", ts)
            ts += 1.0
    network.add_edge("A", "C", ts)
    ts += 1.0
    network.add_edge("B", "C", ts)
    ts += 1.0
    network.add_edge("X", "C", ts)
    ts += 1.0
    network.add_edge("Y", "C", ts)
    return network


def motivating_comparison(k: int = 6) -> dict:
    """Score ``A–B`` and ``X–Y`` with every Fig. 1(b) feature plus SSF.

    Returns:
        dict with:

        * ``"heuristics"`` — ``{feature: (score_AB, score_XY)}``,
        * ``"undistinguished"`` — features scoring both pairs equally,
        * ``"ssf_ab"`` / ``"ssf_xy"`` — the two SSF vectors,
        * ``"ssf_distinguishes"`` — whether the SSF vectors differ.
    """
    network = build_celebrity_network()
    scorers = (
        CommonNeighbors(),
        Jaccard(),
        PreferentialAttachment(),
        AdamicAdar(),
        ResourceAllocation(),
        ReliableWeightedResourceAllocation(),
    )
    heuristics: dict[str, tuple[float, float]] = {}
    for scorer in scorers:
        scorer.fit(network)
        heuristics[scorer.name] = (
            scorer.score(*TARGET_CELEBRITY),
            scorer.score(*TARGET_FANS),
        )

    extractor = SSFExtractor(network, SSFConfig(k=k))
    ssf_ab = extractor.extract(*TARGET_CELEBRITY)
    ssf_xy = extractor.extract(*TARGET_FANS)

    undistinguished = sorted(
        name
        for name, (s_ab, s_xy) in heuristics.items()
        if np.isclose(s_ab, s_xy)
    )
    return {
        "heuristics": heuristics,
        "undistinguished": undistinguished,
        "ssf_ab": ssf_ab,
        "ssf_xy": ssf_xy,
        "ssf_distinguishes": not np.allclose(ssf_ab, ssf_xy),
    }


def format_motivating_table(comparison: dict) -> str:
    """Render the Fig. 1(b)-style comparison as text."""
    lines = [f"{'feature':8s} {'A-B':>10s} {'X-Y':>10s} {'differs?':>9s}"]
    lines.append("-" * 40)
    for name, (s_ab, s_xy) in comparison["heuristics"].items():
        differs = "no" if name in comparison["undistinguished"] else "yes"
        lines.append(f"{name:8s} {s_ab:10.4f} {s_xy:10.4f} {differs:>9s}")
    ssf = "yes" if comparison["ssf_distinguishes"] else "no"
    lines.append(f"{'SSF':8s} {'(vector)':>10s} {'(vector)':>10s} {ssf:>9s}")
    return "\n".join(lines)

"""Experiment harness: the paper's evaluation (Tables I–III, Figs. 1/6/7)."""

from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import (
    FEATURE_METHODS,
    METHOD_ORDER,
    RANKING_METHODS,
    MethodResult,
)
from repro.experiments.runner import (
    LinkPredictionExperiment,
    run_dataset,
    run_table3,
)
from repro.experiments.figures import k_sweep, mine_frequent_pattern
from repro.experiments.motivating import (
    build_celebrity_network,
    motivating_comparison,
)
from repro.experiments.tables import (
    TABLE1_ROWS,
    format_table1,
    format_table2,
    format_table3,
)

__all__ = [
    "ExperimentConfig",
    "MethodResult",
    "METHOD_ORDER",
    "RANKING_METHODS",
    "FEATURE_METHODS",
    "LinkPredictionExperiment",
    "run_dataset",
    "run_table3",
    "k_sweep",
    "mine_frequent_pattern",
    "build_celebrity_network",
    "motivating_comparison",
    "TABLE1_ROWS",
    "format_table1",
    "format_table2",
    "format_table3",
]

"""One-shot markdown report for a single dynamic network.

``generate_report`` runs the whole evaluation stack on one network —
structural/temporal statistics, the Table III method comparison, a Fig. 7
K sweep with an ASCII chart, and the Fig. 6 frequent pattern — and
renders everything as a single markdown document.  This is the artefact
a practitioner would attach to a dataset evaluation; the CLI exposes it
as ``python -m repro report``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import network_report
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import k_sweep, mine_frequent_pattern
from repro.experiments.methods import MethodResult
from repro.experiments.runner import LinkPredictionExperiment
from repro.graph.temporal import DynamicNetwork
from repro.viz import bar_chart, line_chart

DEFAULT_REPORT_METHODS: tuple[str, ...] = (
    "CN",
    "PA",
    "Katz",
    "RW",
    "NMF",
    "WLNM",
    "SSFLR",
    "SSFNM",
)


@dataclass
class ReportSections:
    """The computed ingredients of one report (pre-rendering)."""

    name: str
    statistics: str
    methods: dict[str, MethodResult]
    sweep: dict[int, MethodResult]
    pattern_rendering: str
    task_summary: dict


def compute_report_sections(
    network: DynamicNetwork,
    *,
    name: str = "network",
    config: "ExperimentConfig | None" = None,
    methods: "Sequence[str] | None" = None,
    k_values: Sequence[int] = (5, 10, 15),
    pattern_samples: int = 500,
) -> ReportSections:
    """Run every analysis once and collect the raw results."""
    config = config or ExperimentConfig()
    experiment = LinkPredictionExperiment(network, config)
    chosen = list(methods or DEFAULT_REPORT_METHODS)
    results = {m: experiment.run_method(m) for m in chosen}

    sweep = k_sweep(network, config=config, k_values=k_values, method="SSFLR")
    _, pattern_text = mine_frequent_pattern(
        network, n_samples=pattern_samples, k=config.k, seed=config.seed
    )
    return ReportSections(
        name=name,
        statistics=network_report(network).format(name),
        methods=results,
        sweep=sweep,
        pattern_rendering=pattern_text,
        task_summary=experiment.task.summary(),
    )


def render_report(sections: ReportSections) -> str:
    """Render computed sections as a markdown document."""
    summary = sections.task_summary
    parts = [
        f"# Link-prediction report: {sections.name}",
        "",
        "## Network statistics",
        "",
        "```",
        sections.statistics,
        "```",
        "",
        "## Evaluation task",
        "",
        f"- prediction time: {summary['present_time']}",
        f"- training pairs: {summary['train_total']} "
        f"({summary['train_positive']} positive)",
        f"- test pairs: {summary['test_total']} "
        f"({summary['test_positive']} positive)",
        "",
        "## Method comparison (AUC)",
        "",
        "```",
        bar_chart({m: r.auc for m, r in sections.methods.items()}),
        "```",
        "",
        "| method | AUC | F1 |",
        "|---|---|---|",
    ]
    for name, result in sections.methods.items():
        parts.append(f"| {name} | {result.auc:.3f} | {result.f1:.3f} |")
    parts.extend(
        [
            "",
            "## SSFLR across K",
            "",
            "```",
            line_chart(
                {
                    "AUC": [(k, r.auc) for k, r in sorted(sections.sweep.items())],
                    "F1": [(k, r.f1) for k, r in sorted(sections.sweep.items())],
                },
                width=48,
                height=10,
            ),
            "```",
            "",
            "## Most frequent K-structure-subgraph pattern",
            "",
            "```",
            sections.pattern_rendering,
            "```",
            "",
        ]
    )
    return "\n".join(parts)


def generate_report(
    network: DynamicNetwork,
    *,
    name: str = "network",
    config: "ExperimentConfig | None" = None,
    methods: "Sequence[str] | None" = None,
) -> str:
    """Compute and render the full markdown report."""
    return render_report(
        compute_report_sections(
            network, name=name, config=config, methods=methods
        )
    )

"""Noise-injection experiments: missing and false links.

Sec. VI-C4 explains the Fig. 7 K-ceiling with "there are noise data in
real dynamic networks, e.g. missing links and false links; increasing K
will introduce more noise data into link features".  This module makes
that claim testable: perturb the *observed history* (drop a fraction of
real links, inject a fraction of fake links) and measure how each method
degrades — and whether larger K amplifies the damage, as the paper
argues.
"""

from __future__ import annotations

from typing import Mapping, Sequence


from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import MethodResult
from repro.experiments.runner import LinkPredictionExperiment
from repro.graph.temporal import DynamicNetwork
from repro.sampling.splits import LinkPredictionTask, build_link_prediction_task
from repro.utils.rng import RngLike, ensure_rng


def perturb_network(
    network: DynamicNetwork,
    *,
    missing_fraction: float = 0.0,
    false_fraction: float = 0.0,
    seed: RngLike = 0,
) -> DynamicNetwork:
    """Return a copy with links dropped and/or fake links injected.

    Args:
        missing_fraction: fraction of links removed uniformly at random.
        false_fraction: fake links added, as a fraction of the (original)
            link count; each fake link connects a uniformly random
            non-adjacent node pair at a uniformly random existing
            timestamp.
        seed: RNG.
    """
    if not 0.0 <= missing_fraction < 1.0:
        raise ValueError("missing_fraction must be in [0, 1)")
    if false_fraction < 0.0:
        raise ValueError("false_fraction must be >= 0")
    rng = ensure_rng(seed)
    edges = list(network.edges())
    if not edges:
        return network.copy()

    keep_mask = rng.random(len(edges)) >= missing_fraction
    out = DynamicNetwork()
    for node in network.nodes:
        out.add_node(node)
    for keep, (u, v, ts) in zip(keep_mask, edges):
        if keep:
            out.add_edge(u, v, ts)

    n_false = int(round(len(edges) * false_fraction))
    nodes = network.nodes
    stamps = [ts for _, _, ts in edges]
    attempts = 0
    added = 0
    while added < n_false and attempts < 100 * max(n_false, 1):
        attempts += 1
        i, j = rng.integers(len(nodes)), rng.integers(len(nodes))
        if i == j:
            continue
        u, v = nodes[int(i)], nodes[int(j)]
        if network.has_edge(u, v):
            continue
        out.add_edge(u, v, stamps[int(rng.integers(len(stamps)))])
        added += 1
    return out


def _noisy_task(
    task: LinkPredictionTask,
    *,
    missing_fraction: float,
    false_fraction: float,
    seed: int,
) -> LinkPredictionTask:
    """The same evaluation pairs over a perturbed history."""
    return LinkPredictionTask(
        history=perturb_network(
            task.history,
            missing_fraction=missing_fraction,
            false_fraction=false_fraction,
            seed=seed,
        ),
        present_time=task.present_time,
        train_pairs=task.train_pairs,
        train_labels=task.train_labels,
        test_pairs=task.test_pairs,
        test_labels=task.test_labels,
        metadata=dict(
            task.metadata,
            missing_fraction=missing_fraction,
            false_fraction=false_fraction,
        ),
    )


def noise_sweep(
    network: DynamicNetwork,
    *,
    methods: Sequence[str] = ("CN", "SSFLR", "SSFNM"),
    noise_levels: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    kind: str = "missing",
    config: "ExperimentConfig | None" = None,
    seed: int = 0,
) -> dict[float, dict[str, MethodResult]]:
    """Evaluate methods at increasing noise levels over a FIXED split.

    The split (evaluation pairs) is built once from the clean network;
    only the observed history is perturbed, so degradation measures
    feature robustness rather than task drift.

    Args:
        kind: ``"missing"`` (drop links) or ``"false"`` (inject links).
    """
    if kind not in ("missing", "false"):
        raise ValueError(f"kind must be 'missing' or 'false', got {kind!r}")
    config = config or ExperimentConfig()
    clean_task = build_link_prediction_task(
        network,
        train_fraction=config.train_fraction,
        negative_ratio=config.negative_ratio,
        exclude_history_negatives=config.exclude_history_negatives,
        max_positives=config.max_positives,
        seed=config.seed,
    )
    out: dict[float, dict[str, MethodResult]] = {}
    for level in noise_levels:
        if level == 0.0:
            task = clean_task
        else:
            task = _noisy_task(
                clean_task,
                missing_fraction=level if kind == "missing" else 0.0,
                false_fraction=level if kind == "false" else 0.0,
                seed=seed,
            )
        experiment = LinkPredictionExperiment(task.history, config, task=task)
        out[level] = {m: experiment.run_method(m) for m in methods}
    return out


def format_noise_sweep(
    results: Mapping[float, Mapping[str, MethodResult]], kind: str
) -> str:
    """Render a noise sweep as an aligned AUC table."""
    levels = sorted(results)
    methods = list(next(iter(results.values())))
    header = f"{kind + ' noise':14s}" + "".join(f" {m:>9s}" for m in methods)
    lines = [header, "-" * len(header)]
    for level in levels:
        row = f"{level:14.2f}"
        for m in methods:
            row += f" {results[level][m].auc:9.3f}"
        lines.append(row)
    return "\n".join(lines)

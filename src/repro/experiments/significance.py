"""Paired-bootstrap significance testing for method comparisons.

Single-split AUC differences of a few points (most of Table III's
margins) can be noise.  The paired bootstrap quantifies that: resample
the *same* test items for both methods, recompute the AUC difference per
resample, and read off a confidence interval and a two-sided p-value for
"method A beats method B".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.runner import LinkPredictionExperiment
from repro.metrics.classification import roc_auc_score
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class ComparisonResult:
    """Outcome of one paired-bootstrap comparison (A minus B)."""

    method_a: str
    method_b: str
    auc_a: float
    auc_b: float
    delta: float
    ci_low: float
    ci_high: float
    p_value: float
    n_bootstrap: int

    @property
    def significant(self) -> bool:
        """True when the 95% CI of the difference excludes zero."""
        return self.ci_low > 0.0 or self.ci_high < 0.0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "significant" if self.significant else "not significant"
        return (
            f"{self.method_a} vs {self.method_b}: "
            f"ΔAUC={self.delta:+.3f} "
            f"[{self.ci_low:+.3f}, {self.ci_high:+.3f}] "
            f"p={self.p_value:.3f} ({verdict})"
        )


def bootstrap_auc_difference(
    labels: np.ndarray,
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    *,
    n_bootstrap: int = 1000,
    seed: RngLike = 0,
) -> tuple[float, float, float, float]:
    """Paired bootstrap of ``AUC(a) - AUC(b)`` on a shared test set.

    Returns:
        ``(delta, ci_low, ci_high, p_value)`` — the observed difference,
        its 95% percentile interval, and the two-sided bootstrap p-value.

    Resamples that lose one of the classes are redrawn (they make AUC
    undefined); pathological label vectors therefore still terminate.
    """
    labels = np.asarray(labels)
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if not (labels.shape == scores_a.shape == scores_b.shape):
        raise ValueError("labels and both score arrays must align")
    if n_bootstrap < 10:
        raise ValueError(f"n_bootstrap must be >= 10, got {n_bootstrap}")
    rng = ensure_rng(seed)

    observed = roc_auc_score(labels, scores_a) - roc_auc_score(labels, scores_b)
    n = len(labels)
    deltas = np.empty(n_bootstrap)
    filled = 0
    attempts = 0
    while filled < n_bootstrap:
        attempts += 1
        if attempts > 20 * n_bootstrap:
            raise RuntimeError("bootstrap could not draw two-class resamples")
        idx = rng.integers(0, n, size=n)
        resampled = labels[idx]
        if resampled.min() == resampled.max():
            continue
        deltas[filled] = roc_auc_score(resampled, scores_a[idx]) - roc_auc_score(
            resampled, scores_b[idx]
        )
        filled += 1

    ci_low, ci_high = np.percentile(deltas, (2.5, 97.5))
    # two-sided p: how often the bootstrap difference crosses zero
    tail = min((deltas <= 0).mean(), (deltas >= 0).mean())
    p_value = min(1.0, 2.0 * tail)
    return float(observed), float(ci_low), float(ci_high), float(p_value)


def compare_methods(
    experiment: LinkPredictionExperiment,
    method_a: str,
    method_b: str,
    *,
    n_bootstrap: int = 1000,
    seed: int = 0,
) -> ComparisonResult:
    """Run two methods on one experiment's test split and bootstrap the
    AUC difference.

    The runner records each method's raw test scores in
    ``MethodResult.extras["test_scores"]``, which this reuses directly.
    """
    result_a = experiment.run_method(method_a)
    result_b = experiment.run_method(method_b)
    labels = experiment.task.test_labels
    delta, lo, hi, p = bootstrap_auc_difference(
        labels,
        result_a.extras["test_scores"],
        result_b.extras["test_scores"],
        n_bootstrap=n_bootstrap,
        seed=seed,
    )
    return ComparisonResult(
        method_a=method_a,
        method_b=method_b,
        auc_a=result_a.auc,
        auc_b=result_b.auc,
        delta=delta,
        ci_low=lo,
        ci_high=hi,
        p_value=p,
        n_bootstrap=n_bootstrap,
    )

"""Hyper-parameter search for the SSF methods.

The paper fixes K = 10 and θ = 0.5 globally; a practitioner tuning for
one network does better with a small grid search validated on *earlier*
prediction times (never the final one, which is the test).  This module
provides exactly that: :func:`grid_search` scores every combination of a
parameter grid on rolling validation folds that exclude the last
timestamp, and reports the winner plus the full score table.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Mapping, Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import LinkPredictionExperiment
from repro.graph.temporal import DynamicNetwork
from repro.sampling.temporal_cv import build_temporal_folds

#: config fields a grid may vary
TUNABLE_FIELDS = ("k", "theta", "epochs", "learning_rate", "batch_size")


@dataclass(frozen=True)
class GridSearchResult:
    """Outcome of one grid search."""

    method: str
    best_params: dict
    best_score: float
    #: (params, mean validation AUC) for every combination, best first
    table: tuple[tuple[dict, float], ...]

    def format(self) -> str:
        lines = [
            f"grid search for {self.method}: "
            f"best AUC={self.best_score:.3f} with {self.best_params}"
        ]
        for params, score in self.table:
            lines.append(f"  {score:.3f}  {params}")
        return "\n".join(lines)


def grid_search(
    network: DynamicNetwork,
    method: str,
    param_grid: Mapping[str, Sequence],
    *,
    base_config: "ExperimentConfig | None" = None,
    n_folds: int = 2,
    min_positives: int = 10,
    seed: int = 0,
) -> GridSearchResult:
    """Exhaustive search over ``param_grid`` with temporal validation.

    Validation folds predict the timestamps *before* the final one, so
    the final timestamp remains untouched for the eventual test
    evaluation (no leakage).

    Args:
        network: the full dynamic network.
        method: any registry method name (e.g. ``"SSFNM"``).
        param_grid: config-field name → candidate values; fields must be
            members of :data:`TUNABLE_FIELDS`.
        base_config: defaults for everything not in the grid.
        n_folds: validation folds per combination.
        min_positives: minimum positives per usable fold.
        seed: RNG.

    Raises:
        ValueError: on an empty/unknown grid or unusable folds.
    """
    if not param_grid:
        raise ValueError("param_grid must not be empty")
    unknown = [k for k in param_grid if k not in TUNABLE_FIELDS]
    if unknown:
        raise ValueError(
            f"cannot tune {unknown}; tunable fields: {TUNABLE_FIELDS}"
        )
    for name, values in param_grid.items():
        if not values:
            raise ValueError(f"no candidate values for {name!r}")

    base = base_config or ExperimentConfig()

    # Hold out the final timestamp: validation folds live strictly before.
    last = network.last_timestamp()
    development = network.slice(network.first_timestamp(), last)
    folds = build_temporal_folds(
        development,
        n_folds=n_folds,
        min_positives=min_positives,
        train_fraction=base.train_fraction,
        negative_ratio=base.negative_ratio,
        exclude_history_negatives=base.exclude_history_negatives,
        max_positives=base.max_positives,
        seed=seed,
    )

    names = list(param_grid)
    scored: list[tuple[dict, float]] = []
    for combo in itertools.product(*(param_grid[n] for n in names)):
        params = dict(zip(names, combo))
        config = replace(base, **params)
        aucs = []
        for task in folds:
            experiment = LinkPredictionExperiment(
                task.history, config, task=task
            )
            aucs.append(experiment.run_method(method).auc)
        scored.append((params, float(np.mean(aucs))))

    scored.sort(key=lambda item: item[1], reverse=True)
    best_params, best_score = scored[0]
    return GridSearchResult(
        method=method,
        best_params=best_params,
        best_score=best_score,
        table=tuple(scored),
    )
